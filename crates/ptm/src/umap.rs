//! A generation-stamped open-addressing map for the transaction hot path.
//!
//! Transactions need `addr -> redo-entry` and `orec -> ownership` lookups
//! on every instrumented access, and the structures are logically cleared
//! at every transaction boundary. A `std::collections::HashMap` would pay
//! SipHash plus an O(capacity) clear; this map uses a multiplicative hash
//! and O(1) clear via generation stamps: a slot is live only if its stamp
//! matches the current generation.

/// Open-addressing `u64 -> u64` map with O(1) clear.
#[derive(Debug)]
pub struct U64Map {
    keys: Vec<u64>,
    vals: Vec<u64>,
    gens: Vec<u32>,
    gen: u32,
    mask: usize,
    len: usize,
}

impl U64Map {
    /// Create with capacity for at least `cap` entries before growth.
    pub fn new(cap: usize) -> Self {
        let slots = (cap.max(8) * 2).next_power_of_two();
        U64Map {
            keys: vec![0; slots],
            vals: vec![0; slots],
            gens: vec![0; slots],
            gen: 1,
            mask: slots - 1,
            len: 0,
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all entries in O(1).
    pub fn clear(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Extremely rare wrap: do the O(capacity) scrub once per 2^32.
            self.gens.fill(0);
            self.gen = 1;
        }
        self.len = 0;
    }

    /// Look up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut i = self.slot_of(key);
        loop {
            if self.gens[i] != self.gen {
                return None;
            }
            if self.keys[i] == key {
                return Some(self.vals[i]);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Slot count of the backing table (doubles on growth).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Insert or overwrite; returns the previous value if any.
    ///
    /// Occupancy is checked only when a genuinely new key lands: an
    /// overwrite of an existing key never grows the table.
    #[inline]
    pub fn insert(&mut self, key: u64, val: u64) -> Option<u64> {
        let mut i = self.slot_of(key);
        loop {
            if self.gens[i] != self.gen {
                if self.len * 10 >= (self.mask + 1) * 7 {
                    self.grow();
                    return self.insert(key, val);
                }
                self.gens[i] = self.gen;
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            if self.keys[i] == key {
                let old = self.vals[i];
                self.vals[i] = val;
                return Some(old);
            }
            i = (i + 1) & self.mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let slots = (self.mask + 1) * 2;
        let mut bigger = U64Map {
            keys: vec![0; slots],
            vals: vec![0; slots],
            gens: vec![0; slots],
            gen: 1,
            mask: slots - 1,
            len: 0,
        };
        for i in 0..=self.mask {
            if self.gens[i] == self.gen {
                bigger.insert(self.keys[i], self.vals[i]);
            }
        }
        *self = bigger;
    }
}

/// Deduplicating set of cache-line keys for one fence window.
///
/// The write-combining commit pipeline offers every durability
/// obligation (redo write-back lines, `eager_writes`, fresh blocks,
/// log lines) to a `LineSet`; duplicates are filtered in O(1) via the
/// generation-stamped [`U64Map`], and the surviving unique lines are
/// drained in insertion order through `MemSession::clwb_batch`. The
/// spread between [`LineSet::offered`] and [`LineSet::len`] is the
/// number of flushes the planner elided.
#[derive(Debug)]
pub struct LineSet {
    index: U64Map,
    lines: Vec<u64>,
    offered: u64,
}

impl LineSet {
    /// Create with capacity for roughly `cap` unique lines.
    pub fn new(cap: usize) -> Self {
        LineSet {
            index: U64Map::new(cap),
            lines: Vec::with_capacity(cap),
            offered: 0,
        }
    }

    /// Offer a line key; returns `true` if it was new to this window.
    #[inline]
    pub fn insert(&mut self, line_key: u64) -> bool {
        self.offered += 1;
        if self.index.insert(line_key, 0).is_none() {
            self.lines.push(line_key);
            true
        } else {
            false
        }
    }

    /// Unique lines collected this window.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Total offers this window, duplicates included.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Unique line keys in first-insertion order.
    pub fn lines(&self) -> &[u64] {
        &self.lines
    }

    /// Reset for the next fence window; O(1) in the index.
    pub fn clear(&mut self) {
        self.index.clear();
        self.lines.clear();
        self.offered = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m = U64Map::new(4);
        assert_eq!(m.insert(10, 1), None);
        assert_eq!(m.get(10), Some(1));
        assert_eq!(m.insert(10, 2), Some(1));
        assert_eq!(m.get(10), Some(2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(11), None);
    }

    #[test]
    fn clear_is_logical() {
        let mut m = U64Map::new(4);
        m.insert(1, 1);
        m.insert(2, 2);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
        m.insert(1, 9);
        assert_eq!(m.get(1), Some(9));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m = U64Map::new(4);
        for k in 0..1000u64 {
            m.insert(k * 7 + 1, k);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(k * 7 + 1), Some(k), "key {k}");
        }
    }

    #[test]
    fn zero_key_works() {
        let mut m = U64Map::new(4);
        m.insert(0, 42);
        assert_eq!(m.get(0), Some(42));
    }

    #[test]
    fn collisions_probe_linearly() {
        let mut m = U64Map::new(8);
        // Many keys, small table: forced collisions.
        for k in 0..64u64 {
            m.insert(k << 32, k);
        }
        for k in 0..64u64 {
            assert_eq!(m.get(k << 32), Some(k));
        }
    }

    #[test]
    fn reuse_across_many_generations() {
        let mut m = U64Map::new(8);
        for round in 0..10_000u64 {
            m.insert(round, round);
            assert_eq!(m.get(round), Some(round));
            m.clear();
            assert_eq!(m.get(round), None);
        }
    }

    /// Regression: overwriting an existing key must never grow the
    /// table, even when occupancy sits at the growth threshold.
    #[test]
    fn overwrite_does_not_grow() {
        let mut m = U64Map::new(8);
        // Fill to exactly the 70% threshold of the 16-slot table so the
        // old "check occupancy before probing" bug would fire on the
        // very next insert call.
        while m.len() * 10 < m.capacity() * 7 {
            let k = m.len() as u64;
            m.insert(k, k);
        }
        let cap = m.capacity();
        for round in 0..1000u64 {
            m.insert(0, round);
        }
        assert_eq!(m.capacity(), cap, "overwrites must not trigger grow()");
        assert_eq!(m.get(0), Some(999));
        // A genuinely new key at the threshold does grow.
        m.insert(u64::MAX, 1);
        assert!(m.capacity() > cap);
        assert_eq!(m.get(u64::MAX), Some(1));
    }

    #[test]
    fn lineset_dedupes_and_counts_offers() {
        let mut s = LineSet::new(4);
        assert!(s.is_empty());
        assert!(s.insert(64));
        assert!(s.insert(128));
        assert!(!s.insert(64));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 2);
        assert_eq!(s.offered(), 4);
        assert_eq!(s.lines(), &[64, 128]);
    }

    #[test]
    fn lineset_clear_resets_window() {
        let mut s = LineSet::new(2);
        for k in 0..100u64 {
            s.insert(k * 64);
            s.insert(k * 64);
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.offered(), 200);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.offered(), 0);
        assert!(s.insert(64), "cleared set treats old lines as new");
        assert_eq!(s.lines(), &[64]);
    }

    #[test]
    fn lineset_preserves_insertion_order_across_growth() {
        let mut s = LineSet::new(2);
        let keys: Vec<u64> = (0..500).map(|k| k * 64 + 7).collect();
        for &k in &keys {
            s.insert(k);
        }
        assert_eq!(s.lines(), &keys[..]);
    }
}
