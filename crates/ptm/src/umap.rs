//! A generation-stamped open-addressing map for the transaction hot path.
//!
//! Transactions need `addr -> redo-entry` and `orec -> ownership` lookups
//! on every instrumented access, and the structures are logically cleared
//! at every transaction boundary. A `std::collections::HashMap` would pay
//! SipHash plus an O(capacity) clear; this map uses a multiplicative hash
//! and O(1) clear via generation stamps: a slot is live only if its stamp
//! matches the current generation.

/// Open-addressing `u64 -> u64` map with O(1) clear.
#[derive(Debug)]
pub struct U64Map {
    keys: Vec<u64>,
    vals: Vec<u64>,
    gens: Vec<u32>,
    gen: u32,
    mask: usize,
    len: usize,
}

impl U64Map {
    /// Create with capacity for at least `cap` entries before growth.
    pub fn new(cap: usize) -> Self {
        let slots = (cap.max(8) * 2).next_power_of_two();
        U64Map {
            keys: vec![0; slots],
            vals: vec![0; slots],
            gens: vec![0; slots],
            gen: 1,
            mask: slots - 1,
            len: 0,
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all entries in O(1).
    pub fn clear(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Extremely rare wrap: do the O(capacity) scrub once per 2^32.
            self.gens.fill(0);
            self.gen = 1;
        }
        self.len = 0;
    }

    /// Look up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut i = self.slot_of(key);
        loop {
            if self.gens[i] != self.gen {
                return None;
            }
            if self.keys[i] == key {
                return Some(self.vals[i]);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Insert or overwrite; returns the previous value if any.
    #[inline]
    pub fn insert(&mut self, key: u64, val: u64) -> Option<u64> {
        if self.len * 10 >= (self.mask + 1) * 7 {
            self.grow();
        }
        let mut i = self.slot_of(key);
        loop {
            if self.gens[i] != self.gen {
                self.gens[i] = self.gen;
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            if self.keys[i] == key {
                let old = self.vals[i];
                self.vals[i] = val;
                return Some(old);
            }
            i = (i + 1) & self.mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let slots = (self.mask + 1) * 2;
        let mut bigger = U64Map {
            keys: vec![0; slots],
            vals: vec![0; slots],
            gens: vec![0; slots],
            gen: 1,
            mask: slots - 1,
            len: 0,
        };
        for i in 0..=self.mask {
            if self.gens[i] == self.gen {
                bigger.insert(self.keys[i], self.vals[i]);
            }
        }
        *self = bigger;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m = U64Map::new(4);
        assert_eq!(m.insert(10, 1), None);
        assert_eq!(m.get(10), Some(1));
        assert_eq!(m.insert(10, 2), Some(1));
        assert_eq!(m.get(10), Some(2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(11), None);
    }

    #[test]
    fn clear_is_logical() {
        let mut m = U64Map::new(4);
        m.insert(1, 1);
        m.insert(2, 2);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
        m.insert(1, 9);
        assert_eq!(m.get(1), Some(9));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m = U64Map::new(4);
        for k in 0..1000u64 {
            m.insert(k * 7 + 1, k);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(k * 7 + 1), Some(k), "key {k}");
        }
    }

    #[test]
    fn zero_key_works() {
        let mut m = U64Map::new(4);
        m.insert(0, 42);
        assert_eq!(m.get(0), Some(42));
    }

    #[test]
    fn collisions_probe_linearly() {
        let mut m = U64Map::new(8);
        // Many keys, small table: forced collisions.
        for k in 0..64u64 {
            m.insert(k << 32, k);
        }
        for k in 0..64u64 {
            assert_eq!(m.get(k << 32), Some(k));
        }
    }

    #[test]
    fn reuse_across_many_generations() {
        let mut m = U64Map::new(8);
        for round in 0..10_000u64 {
            m.insert(round, round);
            assert_eq!(m.get(round), Some(round));
            m.clear();
            assert_eq!(m.get(round), None);
        }
    }
}
