//! # ptm — persistent transactional memory (the paper's core contribution)
//!
//! An orec-based PTM runtime in the style of the authors' PACT'19 LLVM
//! plugin. Algorithms are pluggable: each one implements
//! [`algo::LogPolicy`] and registers in the [`algo`] registry, while the
//! driver ([`txn`]) and shared machinery ([`access`]) stay
//! algorithm-agnostic. Three policies ship:
//!
//! * **orec-lazy** ([`config::Algo::RedoLazy`]) — commit-time locking with
//!   redo logging and O(1) fences per transaction;
//! * **orec-eager** ([`config::Algo::UndoEager`]) — encounter-time locking
//!   with undo logging and O(W) fences;
//! * **cow shadow** ([`config::Algo::CowShadow`]) — commit-time locking
//!   with copy-on-write shadow lines published home at commit, O(1)
//!   fences at ~2x data-write cost.
//!
//! All are tuned the way the paper tunes them for Optane: the log's hash
//! index lives in DRAM while logged data lives in persistent memory (the
//! split-log optimization), timestamp extension is on, and read-only
//! transactions skip the commit protocol entirely.
//!
//! Persistence is mediated by [`pmem_sim`]: under ADR the algorithms
//! issue `clwb`/`sfence`; under eADR/PDRAM/PDRAM-Lite those calls are
//! elided, which is exactly how the paper derives its eADR variants from
//! the ADR ones (§III-C). Crash recovery ([`recovery::recover`]) replays
//! committed redo logs and rolls back in-flight undo logs.
//!
//! ## Example
//!
//! ```
//! use pmem_sim::{Machine, MachineConfig, DurabilityDomain};
//! use palloc::PHeap;
//! use ptm::{Ptm, PtmConfig, TxThread};
//!
//! let machine = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
//! let heap = PHeap::format(&machine, "heap", 1 << 16, 8);
//! let ptm = Ptm::new(PtmConfig::redo());
//! let mut th = TxThread::new(ptm, heap.clone(), machine.session(0));
//!
//! let cell = heap.alloc(th.session_mut(), 1);
//! th.run(|tx| tx.write(cell, 41));
//! let v = th.run(|tx| {
//!     let v = tx.read(cell)?;
//!     tx.write(cell, v + 1)?;
//!     Ok(v + 1)
//! });
//! assert_eq!(v, 42);
//! ```

pub mod access;
pub mod algo;
pub mod config;
pub mod crash_harness;
pub mod db;
#[cfg(test)]
mod engine_tests;
pub mod log;
pub mod orec;
pub mod phases;
pub mod recovery;
pub mod shard;
pub mod stats;
pub mod twopc;
pub mod txn;
pub mod umap;

pub use config::{Algo, FlushTiming, PtmConfig};
pub use crash_harness::{
    count_sites, count_sites_sharded, default_cases, run_site, run_site_sharded, sweep, sweep_case,
    sweep_case_sharded, BankTransfers, CaseResult, CrashWorkload, GroupWindowBank,
    ShardedTransfers, SiteResult, SweepCase, SweepOptions, SweepReport, Violation,
};
pub use db::PtmDb;
pub use phases::{Phase, PhaseSnapshot, PhaseStats, PhaseTimer, PHASE_COUNT};
pub use recovery::resolve_in_doubt;
pub use recovery::{recover, recover_with_options, RecoverOptions, RecoveryReport};
pub use shard::{ShardedEngine, SHARD_HEAP_PREFIX};
pub use stats::{PtmStats, PtmStatsSnapshot};
pub use twopc::{CrossShardTx, CrossTx};
pub use txn::{Abort, Ptm, Tx, TxResult, TxThread};
