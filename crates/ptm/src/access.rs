//! Shared per-thread transaction machinery, independent of the logging
//! algorithm: read-set tracking, `U64Map`-deduped write-set structures,
//! orec acquisition/validation, phase charging, flush planning, and
//! trace emission.
//!
//! [`TxAccess`] owns everything a transaction attempt accumulates —
//! the [`crate::algo::LogPolicy`] implementations operate on it and keep
//! no state of their own. `txn.rs` drives the retry loop and the HTM
//! fast path on top of it.

use std::sync::Arc;

use palloc::PHeap;
use pmem_sim::{MemSession, PAddr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use trace::{AbortCause, EventKind, HtmAbortCause};

use crate::log::TxLog;
use crate::orec::{is_locked, owner_of};
use crate::phases::{Phase, PhaseTimer};
use crate::stats::PtmStats;
use crate::txn::{Abort, Ptm, TxResult};
use crate::umap::{LineSet, U64Map};

/// The shared state of a transaction attempt (one per [`crate::TxThread`]).
///
/// Fields are `pub(crate)`: the algorithm policies in [`crate::algo`] and
/// the driver in [`crate::txn`] manipulate them directly, exactly like
/// the pre-seam monolith did.
pub struct TxAccess {
    pub(crate) ptm: Arc<Ptm>,
    pub(crate) heap: Arc<PHeap>,
    pub(crate) s: MemSession,
    pub(crate) tid: u64,
    pub(crate) log: TxLog,

    pub(crate) start_time: u64,
    pub(crate) read_set: Vec<(u32, u64)>,
    /// Duplicate filter over `read_set` (orec -> slot), maintained only
    /// under `write_combining`: repeated reads of a hot stripe then cost
    /// O(unique orecs) in `validate_reads`/`extend`.
    pub(crate) read_index: U64Map,
    /// Redo: (addr bits, new value). Undo: (addr bits, old value).
    pub(crate) entries: Vec<(u64, u64)>,
    pub(crate) redo_index: U64Map,
    /// Write-combining flush planner: every durability obligation of the
    /// current fence window, deduped at cache-line granularity.
    pub(crate) plan: LineSet,
    /// Reusable drain buffer handed to `MemSession::clwb_batch`.
    pub(crate) plan_scratch: Vec<PAddr>,
    /// Held orecs with their pre-lock versions.
    pub(crate) owned: Vec<(u32, u64)>,
    pub(crate) owned_map: U64Map,
    pub(crate) undo_logged: U64Map,
    pub(crate) eager_writes: Vec<u64>,
    /// CowShadow: home-line base bits -> index into `cow_lines`.
    pub(crate) cow_map: U64Map,
    /// CowShadow: per-home-line shadow redirections.
    pub(crate) cow_lines: Vec<crate::algo::cow::CowLine>,
    /// CowShadow: unique written word addresses (commit-time orec
    /// acquisition, word-granular like the redo write set).
    pub(crate) cow_words: Vec<u64>,
    /// Blocks allocated and zero-initialized this transaction via the
    /// alloc-new optimization: their stores bypass the log (they are
    /// unreachable until a logged pointer-write commits) but their lines
    /// must be flushed before the commit point.
    pub(crate) fresh_blocks: Vec<(u64, usize)>,
    pub(crate) tx_allocs: Vec<PAddr>,
    pub(crate) tx_frees: Vec<PAddr>,
    /// Cached copy of the persistent undo sequence number (log header
    /// word `W_SEQ`).
    pub(crate) undo_seq: u64,
    /// Executing on the hardware path (no logging, no orec charges).
    pub(crate) in_htm: bool,
    /// Why the current hardware attempt aborted, set at the site that
    /// decided it (capacity overflow, conflict, explicit policy abort);
    /// consumed by the driver when the abort is counted.
    pub(crate) htm_abort_cause: Option<HtmAbortCause>,
    /// The commit timestamp of the in-flight commit, set by the driver
    /// after the clock bump so `make_durable` can seal entries with it.
    pub(crate) commit_wv: u64,
    /// `HtmLogged` back-end log ring base: entries `0..log_sealed` belong
    /// to earlier committed-but-unretired transactions. Lives *across*
    /// transactions (the ring is reset outside the hardware section);
    /// deliberately not cleared by [`Self::begin`].
    pub(crate) log_sealed: usize,
    pub(crate) rng: SmallRng,
    pub(crate) attempts: u32,
    /// Charges elapsed virtual time to [`Phase`]s; drained into
    /// `ptm.phases` at the end of every [`crate::TxThread::run`].
    pub(crate) timer: PhaseTimer,
    /// Abort attribution for the flight recorder: `(cause code, orec)`
    /// set at the site that decided to abort, consumed when the abort is
    /// counted (a `None` at that point means the closure itself returned
    /// `Err(Abort)` — a user abort with no contended orec).
    pub(crate) pending_abort: Option<(u64, u64)>,
}

impl TxAccess {
    pub(crate) fn new(ptm: Arc<Ptm>, heap: Arc<PHeap>, s: MemSession) -> TxAccess {
        let tid = s.tid() as u64;
        let log = TxLog::create(s.machine(), s.tid(), &ptm.config);
        let cap = ptm.config.log_capacity.min(1 << 12);
        TxAccess {
            ptm,
            heap,
            s,
            tid,
            log,
            start_time: 0,
            read_set: Vec::with_capacity(256),
            read_index: U64Map::new(256),
            entries: Vec::with_capacity(cap.min(256)),
            redo_index: U64Map::new(64),
            plan: LineSet::new(64),
            plan_scratch: Vec::with_capacity(64),
            owned: Vec::with_capacity(64),
            owned_map: U64Map::new(64),
            undo_logged: U64Map::new(64),
            eager_writes: Vec::with_capacity(64),
            cow_map: U64Map::new(64),
            cow_lines: Vec::with_capacity(64),
            cow_words: Vec::with_capacity(64),
            fresh_blocks: Vec::new(),
            tx_allocs: Vec::new(),
            tx_frees: Vec::new(),
            undo_seq: 0,
            in_htm: false,
            htm_abort_cause: None,
            commit_wv: 0,
            log_sealed: 0,
            rng: SmallRng::seed_from_u64(0x9E37 ^ tid),
            attempts: 0,
            timer: PhaseTimer::new(),
            pending_abort: None,
        }
    }

    /// Record a flight-recorder event. One boolean test when tracing is
    /// off (and the session only captures a ring when a sink is attached
    /// to the machine, so an enabled flag without a sink is still just a
    /// second branch).
    #[inline]
    pub(crate) fn trace(&mut self, kind: EventKind, a: u64, b: u64) {
        if self.ptm.config.tracing {
            self.s.trace_event(kind, a, b);
        }
    }

    /// Note which orec (and why) decided the current attempt must abort.
    #[inline]
    pub(crate) fn abort_at(&mut self, cause: AbortCause, orec: u32) {
        if self.ptm.config.tracing {
            self.pending_abort = Some((cause as u64, orec as u64));
        }
    }

    /// `sfence`, charged to [`Phase::FenceWait`]. Under eADR-class
    /// domains the session elides the fence, so ~0 ns is charged — this
    /// is how the profiler shows the ADR→eADR fence-wait collapse.
    /// With `group_commit` on (and a flush-requiring domain), the fence
    /// first tries to join the shard's group-commit window.
    #[inline]
    pub(crate) fn fence(&mut self) {
        if !self.ptm.config.elide_fences {
            let now = self.s.now();
            let prev = self.timer.switch(now, Phase::FenceWait);
            if self.ptm.config.group_commit && self.s.machine().domain().requires_flushes() {
                self.group_fence();
            } else {
                self.s.sfence();
            }
            let now = self.s.now();
            self.timer.switch(now, prev);
        }
    }

    /// The group-commit fence protocol (see `txn::GroupFence`). A fence
    /// request *joins* the window's last completed lead fence when that
    /// fence (a) completed at or after this thread's latest WPQ
    /// acceptance — so it drained this thread's flushes too — and (b)
    /// lies within the recency window of this thread's clock in either
    /// direction (a stale record from before a clock reset must lead,
    /// not join). Otherwise it *leads*: executes a real `sfence` and
    /// publishes the completion time for later committers to join.
    /// Joining is retrospective — nobody ever blocks waiting for a
    /// future fence — so the protocol is deadlock-free even when all
    /// virtual threads share one OS thread.
    fn group_fence(&mut self) {
        let window = self.ptm.config.group_window_ns;
        let acc = self.s.last_flush_accept();
        let now = self.s.now();
        let g = self.ptm.group.lock().unwrap();
        let joinable = g.done >= acc
            && now <= g.done.saturating_add(window)
            && g.done <= now.saturating_add(window);
        if joinable {
            let cover = g.done;
            drop(g);
            self.s.fence_join(cover);
            PtmStats::bump(&self.ptm.stats.sfences_elided);
        } else {
            drop(g);
            self.s.sfence();
            let done = self.s.now();
            // Store unconditionally: even if a concurrent lead finished
            // later, any completed fence is a valid (if conservative)
            // cover, and overwriting heals stale records left behind by
            // `begin_run` clock resets.
            self.ptm.group.lock().unwrap().done = done;
            PtmStats::bump(&self.ptm.stats.group_commit_windows);
        }
    }

    /// `clwb`, charged to [`Phase::Flush`] (elided → ~0 under eADR).
    #[inline]
    pub(crate) fn flush_line(&mut self, addr: PAddr) {
        let now = self.s.now();
        let prev = self.timer.switch(now, Phase::Flush);
        self.s.clwb(addr);
        let now = self.s.now();
        self.timer.switch(now, prev);
    }

    /// Whether this commit should route its flushes through the
    /// write-combining planner. Under eADR-class domains the planner is
    /// skipped entirely (flushes are free no-ops there, so planning
    /// would only spend DRAM time and skew the planner counters).
    #[inline]
    pub(crate) fn combining(&self) -> bool {
        self.ptm.config.write_combining && self.s.machine().domain().requires_flushes()
    }

    /// Offer the cache line containing `addr` to the fence window's plan.
    #[inline]
    pub(crate) fn plan_line(&mut self, addr: PAddr) {
        let base = PAddr::new(addr.pool(), addr.line() * pmem_sim::WORDS_PER_LINE as u64);
        self.plan.insert(base.0);
    }

    /// Drain the planned window through the bank-interleaved batched
    /// flusher, charged to [`Phase::Flush`]; updates the planner
    /// counters (`lines_planned`, `flushes_elided`).
    pub(crate) fn drain_plan(&mut self) {
        let unique = self.plan.len() as u64;
        let offered = self.plan.offered();
        if unique == 0 {
            return;
        }
        PtmStats::add(&self.ptm.stats.lines_planned, unique);
        PtmStats::add(&self.ptm.stats.flushes_elided, offered - unique);
        self.plan_scratch.clear();
        self.plan_scratch
            .extend(self.plan.lines().iter().map(|&k| PAddr(k)));
        self.plan.clear();
        let now = self.s.now();
        let prev = self.timer.switch(now, Phase::Flush);
        self.s.clwb_batch(&mut self.plan_scratch);
        let now = self.s.now();
        self.timer.switch(now, prev);
    }

    #[inline]
    pub(crate) fn index_cost(&mut self) {
        let cfg = &self.ptm.config;
        if cfg.split_log_index {
            self.s.advance(cfg.index_ns);
        } else {
            // Unsplit ablation: the index itself lives in Optane; charge a
            // partial media access per probe (some probes hit cache).
            let extra = self.s.machine().model().optane_load_ns / 4;
            self.s.advance(cfg.index_ns + extra);
        }
    }

    pub(crate) fn begin(&mut self) {
        // A new attempt starts in speculation (also closes out the
        // previous attempt's backoff/rollback interval).
        let now = self.s.now();
        self.timer.switch(now, Phase::Speculation);
        self.read_set.clear();
        self.read_index.clear();
        self.entries.clear();
        self.redo_index.clear();
        self.plan.clear();
        self.owned.clear();
        self.owned_map.clear();
        self.undo_logged.clear();
        self.eager_writes.clear();
        self.cow_map.clear();
        self.cow_lines.clear();
        self.cow_words.clear();
        self.fresh_blocks.clear();
        self.tx_allocs.clear();
        self.tx_frees.clear();
        self.start_time = self.ptm.clock.sample();
        self.s.advance(self.ptm.config.orec_ns);
        self.pending_abort = None;
        self.htm_abort_cause = None;
        self.commit_wv = 0;
        let (attempts, start) = (self.attempts as u64, self.start_time);
        self.trace(EventKind::TxBegin, attempts, start);
    }

    /// Timestamp extension: revalidate the read set at a newer clock.
    pub(crate) fn extend(&mut self) -> bool {
        let cfg_orec_ns = self.ptm.config.orec_ns;
        let ts = self.ptm.clock.sample();
        self.s
            .advance(cfg_orec_ns * (self.read_set.len() as u64 + 1));
        for i in 0..self.read_set.len() {
            let (o, ver) = self.read_set[i];
            let cur = self.ptm.orecs.load(o);
            if cur == ver {
                continue;
            }
            if is_locked(cur) && owner_of(cur) == self.tid {
                if let Some(idx) = self.owned_map.get(o as u64) {
                    if self.owned[idx as usize].1 == ver {
                        continue;
                    }
                }
            }
            return false;
        }
        self.start_time = ts;
        PtmStats::bump(&self.ptm.stats.extensions);
        true
    }

    /// The shared validated-read protocol: spin past locked stripes,
    /// snapshot-check the orec around the data load, extend on a too-new
    /// version, and record the read in the (optionally duplicate-
    /// filtered) read set. Algorithm-specific own-write fast paths run
    /// before this via [`crate::algo::LogPolicy::on_read`].
    pub(crate) fn validated_read(&mut self, addr: PAddr, o: u32) -> TxResult<u64> {
        let spin_limit = self.ptm.config.lock_spin;
        let orec_ns = self.ptm.config.orec_ns;
        let mut spins = 0;
        loop {
            self.s.advance(orec_ns);
            let v1 = self.ptm.orecs.load(o);
            if is_locked(v1) {
                if spins < spin_limit {
                    spins += 1;
                    self.s.advance(8);
                    continue;
                }
                PtmStats::bump(&self.ptm.stats.aborts_read_locked);
                self.abort_at(AbortCause::ReadLocked, o);
                return Err(Abort);
            }
            if v1 > self.start_time {
                if self.ptm.config.ts_extension && self.extend() {
                    continue;
                }
                PtmStats::bump(&self.ptm.stats.aborts_read_version);
                self.abort_at(AbortCause::ReadVersion, o);
                return Err(Abort);
            }
            let val = self.s.load(addr);
            self.s.advance(orec_ns);
            let v2 = self.ptm.orecs.load(o);
            if v2 != v1 {
                if spins < spin_limit {
                    spins += 1;
                    continue;
                }
                PtmStats::bump(&self.ptm.stats.aborts_read_version);
                self.abort_at(AbortCause::ReadVersion, o);
                return Err(Abort);
            }
            self.trace(EventKind::TxRead, o as u64, addr.0);
            if self.ptm.config.write_combining {
                // Duplicate-filtered read set: one slot per orec. A
                // repeat hit must have observed the recorded version —
                // any later committer bumps the orec past start_time,
                // which forces the extension/abort path above before
                // this push point is reached.
                match self.read_index.get(o as u64) {
                    Some(slot) => {
                        debug_assert_eq!(
                            self.read_set[slot as usize].1, v1,
                            "re-read of orec {o} observed a version the recorded \
                             snapshot did not"
                        );
                    }
                    None => {
                        self.read_index.insert(o as u64, self.read_set.len() as u64);
                        self.read_set.push((o, v1));
                    }
                }
            } else {
                self.read_set.push((o, v1));
            }
            return Ok(val);
        }
    }

    /// Validate the read set against held/current orecs. Assumes write
    /// orecs are already acquired. On failure returns the orec whose
    /// version moved (abort attribution).
    pub(crate) fn validate_reads(&mut self) -> Result<(), u32> {
        self.s
            .advance(self.ptm.config.orec_ns * self.read_set.len() as u64);
        for i in 0..self.read_set.len() {
            let (o, ver) = self.read_set[i];
            let cur = self.ptm.orecs.load(o);
            if cur == ver {
                continue;
            }
            if is_locked(cur) && owner_of(cur) == self.tid {
                if let Some(idx) = self.owned_map.get(o as u64) {
                    if self.owned[idx as usize].1 == ver {
                        continue;
                    }
                }
            }
            return Err(o);
        }
        Ok(())
    }

    /// Commit-time acquisition of the orec striping `addr` (redo-style:
    /// locks any unlocked even version regardless of its timestamp).
    /// Charges the index probe and orec accesses; on failure notes the
    /// abort cause and stats and returns `false` — the caller releases
    /// whatever it already holds.
    pub(crate) fn acquire_commit(&mut self, addr: PAddr) -> bool {
        let spin_limit = self.ptm.config.lock_spin;
        let orec_ns = self.ptm.config.orec_ns;
        let o = self.ptm.orecs.index_of(addr);
        self.s.advance(self.ptm.config.index_ns);
        if self.owned_map.get(o as u64).is_some() {
            return true;
        }
        let mut spins = 0;
        let acquired = loop {
            self.s.advance(orec_ns);
            let v = self.ptm.orecs.load(o);
            if is_locked(v) {
                if spins < spin_limit {
                    spins += 1;
                    self.s.advance(8);
                    continue;
                }
                break false;
            }
            self.s.advance(orec_ns);
            if self.ptm.orecs.try_lock(o, v, self.tid).is_ok() {
                self.owned_map.insert(o as u64, self.owned.len() as u64);
                self.owned.push((o, v));
                self.trace(EventKind::TxAcquire, o as u64, v);
                break true;
            }
            if spins >= spin_limit {
                break false;
            }
            spins += 1;
        };
        if !acquired {
            PtmStats::bump(&self.ptm.stats.aborts_acquire);
            self.abort_at(AbortCause::Acquire, o);
        }
        acquired
    }

    /// Flush the lines of alloc-new blocks (unlogged initialization) so
    /// they are durable before the commit point.
    pub(crate) fn flush_fresh_blocks(&mut self) {
        for i in 0..self.fresh_blocks.len() {
            let (addr_bits, words) = self.fresh_blocks[i];
            let base = PAddr(addr_bits);
            let mut w = 0u64;
            while w < words as u64 {
                self.flush_line(base.offset(w));
                w += pmem_sim::WORDS_PER_LINE as u64;
            }
        }
    }

    /// Planner counterpart of [`Self::flush_fresh_blocks`]: offer the
    /// alloc-new lines to the current fence window instead of flushing
    /// them immediately (overlapping blocks dedupe).
    pub(crate) fn plan_fresh_blocks(&mut self) {
        for i in 0..self.fresh_blocks.len() {
            let (addr_bits, words) = self.fresh_blocks[i];
            let base = PAddr(addr_bits);
            let mut w = 0u64;
            while w < words as u64 {
                self.plan_line(base.offset(w));
                w += pmem_sim::WORDS_PER_LINE as u64;
            }
        }
    }

    /// Record the duplicate-filtered read-set high-water mark (only
    /// meaningful when `write_combining` maintains the filter).
    #[inline]
    pub(crate) fn note_read_set(&self) {
        if self.ptm.config.write_combining {
            PtmStats::high_water(
                &self.ptm.stats.max_read_set_unique,
                self.read_set.len() as u64,
            );
        }
    }

    /// Release held orecs at their pre-lock versions (nothing was
    /// written in place). Shared by the redo/cow abort paths and the
    /// HTM commit's failure arm.
    pub(crate) fn release_owned_restore(&mut self) {
        let now = self.s.now();
        self.timer.switch(now, Phase::Rollback);
        self.s
            .advance(self.ptm.config.orec_ns * self.owned.len() as u64);
        for i in 0..self.owned.len() {
            let (o, prev) = self.owned[i];
            self.ptm.orecs.release(o, prev);
        }
        self.owned.clear();
        self.owned_map.clear();
    }

    /// Return transactionally-allocated blocks after an abort.
    pub(crate) fn abort_cleanup(&mut self) {
        let now = self.s.now();
        self.timer.switch(now, Phase::Rollback);
        let heap = Arc::clone(&self.heap);
        for i in 0..self.tx_allocs.len() {
            let a = self.tx_allocs[i];
            heap.free(&mut self.s, a);
        }
        self.tx_allocs.clear();
        self.tx_frees.clear();
    }

    /// Apply deferred frees after a successful commit (allocator work:
    /// charged to [`Phase::Speculation`] like `Tx::alloc`).
    pub(crate) fn apply_frees(&mut self) {
        let now = self.s.now();
        self.timer.switch(now, Phase::Speculation);
        let heap = Arc::clone(&self.heap);
        for i in 0..self.tx_frees.len() {
            let a = self.tx_frees[i];
            heap.free(&mut self.s, a);
        }
        self.tx_frees.clear();
        self.tx_allocs.clear();
    }

    pub(crate) fn backoff(&mut self) {
        let now = self.s.now();
        self.timer.switch(now, Phase::Backoff);
        let shift = self.attempts.min(8);
        // Exponential growth saturates at the configured ceiling so a
        // victim of a hot orec is delayed a bounded amount per attempt
        // (never pushed past, e.g., a whole group-commit window).
        let ceiling = (100u64 << shift).min(self.ptm.config.max_backoff_ns.max(1));
        let delay = self.rng.gen_range(ceiling / 2..=ceiling);
        PtmStats::high_water(&self.ptm.stats.max_backoff_ns, delay);
        // Stamped at backoff start so [ts, ts+delay] is the interval.
        self.trace(EventKind::Backoff, delay, self.attempts as u64);
        self.s.advance(delay);
        self.s.publish_clock();
        std::thread::yield_now();
        if self.attempts > 256 {
            // Deep backoff: on an oversubscribed host a pure yield loop
            // can starve the conflicting lock holder of real CPU time.
            // Virtual time is unaffected (already charged above).
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
}
