//! PTM configuration: algorithm selection and the paper's tuning knobs.

/// Which PTM algorithm to run. The first two are the best performers
/// from the authors' PACT'19 suite, as used throughout the paper; the
/// third is the canonical copy-on-write design point (Marathe et al.,
/// arXiv:1804.00701) that proves the `ptm::algo` seam.
///
/// Each variant maps to one [`crate::algo::LogPolicy`] implementation in
/// the `crate::algo` registry — adding an algorithm means adding a
/// policy file and a registry row, nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// "orec-lazy": commit-time locking with redo logging. Reads consult
    /// the redo log; writes are buffered and applied at commit. O(1)
    /// fences per transaction.
    RedoLazy,
    /// "orec-eager": encounter-time locking with undo logging. Writes go
    /// in place after persisting the old value. O(W) fences.
    UndoEager,
    /// Copy-on-write shadow updates: writes are redirected to
    /// line-granular shadow blocks allocated from the persistent heap,
    /// published atomically at commit (redo-style marker), and reclaimed
    /// on abort (or by the restart GC after a crash). O(1) fences, ~2x
    /// data writes.
    CowShadow,
    /// Durable HTM via aliased back-end logging (Giles et al., *Hardware
    /// Transactional Persistent Memory*): the transaction body runs in a
    /// simulated hardware section with buffered writes and **no** orec
    /// acquisition, flush or fence inside the section; after the section
    /// retires, a redo-style back-end log is persisted and sealed, then
    /// home locations are written back lazily. Conflict detection is the
    /// hardware section itself, so the contention window contains zero
    /// persistence stalls — the HTM fast path works under ADR.
    HtmLogged,
}

impl Algo {
    /// Every registered algorithm, in registry order. Test helpers and
    /// sweep grids iterate this so a newly registered algorithm is
    /// exercised automatically.
    pub const ALL: [Algo; 4] = [
        Algo::RedoLazy,
        Algo::UndoEager,
        Algo::CowShadow,
        Algo::HtmLogged,
    ];

    /// Suffix used in the paper's curve labels ("R" / "U" / "C" / "H").
    pub fn label(self) -> &'static str {
        match self {
            Algo::RedoLazy => "R",
            Algo::UndoEager => "U",
            Algo::CowShadow => "C",
            Algo::HtmLogged => "H",
        }
    }

    /// Canonical CLI name; [`std::fmt::Display`] and [`std::str::FromStr`]
    /// round-trip through it (single source of truth for `--algo`
    /// parsing across the bench binaries and the crash harness).
    pub fn name(self) -> &'static str {
        match self {
            Algo::RedoLazy => "redo",
            Algo::UndoEager => "undo",
            Algo::CowShadow => "cow",
            Algo::HtmLogged => "htm",
        }
    }
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algo {
    type Err = String;

    fn from_str(s: &str) -> Result<Algo, String> {
        Algo::ALL
            .into_iter()
            .find(|a| a.name() == s)
            .ok_or_else(|| format!("unknown algorithm `{s}` (known: redo, undo, cow, htm)"))
    }
}

/// When redo-log lines are flushed (§III-B: the paper found no noticeable
/// difference; `bench --bin ablation_flush_timing` reproduces that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushTiming {
    /// `clwb` each log line as it is written.
    Incremental,
    /// `clwb` all log lines in a tight loop just before the commit marker.
    Batched,
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct PtmConfig {
    pub algo: Algo,
    pub flush_timing: FlushTiming,
    /// Table III's deliberately *incorrect* variant: issue `clwb`s but no
    /// `sfence`s. Measurement-only — recovery guarantees are void.
    pub elide_fences: bool,
    /// The paper's split-log optimization (§III-A): keep the log's hash
    /// index in DRAM. When `false`, index probes are charged Optane
    /// latency (ablation).
    pub split_log_index: bool,
    /// TL2-style timestamp extension on validation failure.
    pub ts_extension: bool,
    /// Write-combining commit pipeline: plan every durability obligation
    /// of a fence window (redo write-back lines, `eager_writes`, fresh
    /// blocks, log lines) in a line-granular `LineSet`, dedupe, and
    /// drain through the bank-interleaved `MemSession::clwb_batch`; also
    /// duplicate-filters the read set so `validate_reads`/`extend` cost
    /// O(unique orecs). Off by default (ablation flag): the naive
    /// per-entry flush loop is the paper's measured baseline.
    pub write_combining: bool,
    /// Cross-transaction group commit (Marathe et al., *Persistent
    /// Memory Transactions*): a transaction reaching `make_durable`
    /// whose flushes were all WPQ-accepted before a recently completed
    /// fence *joins* that fence instead of issuing its own `sfence`.
    /// Joining is retrospective and never blocks, so it composes with
    /// single-OS-thread deterministic runs (crash sweeps). Off by
    /// default: the single-fence-per-commit path stays bit-identical.
    pub group_commit: bool,
    /// Recency window for joining a completed group fence, in virtual
    /// ns: a fence done at `d` covers a joiner at `now` only when
    /// `|now - d| <= group_window_ns` (stale fences must not be joined;
    /// a fence absurdly far in this thread's future signals a clock
    /// reset and is also rejected).
    pub group_window_ns: u64,
    /// Contention backoff ceiling in virtual ns (the exponential retry
    /// backoff saturates here). Bounded so a victim of a hot orec can
    /// never be pushed past a group-commit window length per attempt;
    /// the high-water `PtmStats::max_backoff_ns` makes the actual worst
    /// delay observable.
    pub max_backoff_ns: u64,
    /// Number of orecs (rounded to a power of two).
    pub orec_count: usize,
    /// Log capacity in entries (4 words each).
    pub log_capacity: usize,
    /// PDRAM-Lite primary log budget, in entries. Entries beyond it spill
    /// to an Optane overflow region (§IV-B: a handful of pages per thread
    /// with fall-back to Optane "should suffice").
    pub lite_log_entries: usize,
    /// Where the persistent heap lives (Optane vs the paper's DRAM
    /// ramdisk baseline). Stored here so the harness can construct
    /// matching log pools.
    pub heap_media: pmem_sim::MediaKind,
    /// Modeled cost of one orec/global-clock access (DRAM metadata, hot).
    pub orec_ns: u64,
    /// Modeled cost of one log-index probe when `split_log_index`.
    pub index_ns: u64,
    /// Spin iterations on a locked orec before aborting.
    pub lock_spin: u32,
    /// Abort ceiling before declaring livelock (panics). Generous.
    pub max_retries: u32,
    /// Hardware-TM attempts before falling back to the software path
    /// (0 disables the hybrid entirely). The paper's §V future work:
    /// TSX-style transactions skip all orec instrumentation and logging,
    /// but are incompatible with ADR (`clwb` aborts a hardware
    /// transaction), so under flush-requiring domains the plain hybrid
    /// always takes the software path; [`Algo::HtmLogged`] removes that
    /// restriction by keeping all persistence outside the section. The
    /// hardware model itself (capacity, begin/commit costs, whether HTM
    /// exists at all) lives in `pmem_sim::HtmModel` — a machine property,
    /// not a PTM knob.
    pub htm_retries: u32,
    /// Contention-aware HTM fallback pacing: after this many
    /// *consecutive* hardware capacity/conflict aborts on the same
    /// footprint, skip the remaining retry budget and go straight to
    /// the software fallback (counted in `htm_fallback_fastpathed`).
    /// `0` disables pacing — the full `htm_retries` budget is always
    /// burned, bit-identical to the pre-pacing behavior.
    pub htm_fastpath_threshold: u32,
    /// Record transaction-lifecycle events into the flight recorder
    /// attached to the machine (see the `trace` crate). The memory-system
    /// events trace whenever a sink is attached; this flag additionally
    /// gates the PTM-layer instrumentation (one boolean test per site
    /// when off — the session ring is only captured when a sink is
    /// armed, so the off cost is a single predictable branch).
    pub tracing: bool,
}

impl Default for PtmConfig {
    fn default() -> Self {
        PtmConfig {
            algo: Algo::RedoLazy,
            flush_timing: FlushTiming::Batched,
            elide_fences: false,
            split_log_index: true,
            ts_extension: true,
            write_combining: false,
            group_commit: false,
            group_window_ns: 1_000,
            max_backoff_ns: 40_000,
            orec_count: 1 << 18,
            log_capacity: 1 << 13,
            lite_log_entries: 128,
            heap_media: pmem_sim::MediaKind::Optane,
            orec_ns: 4,
            index_ns: 4,
            lock_spin: 16,
            max_retries: 1_000_000,
            htm_retries: 0,
            htm_fastpath_threshold: 0,
            tracing: false,
        }
    }
}

impl PtmConfig {
    /// Hybrid HTM-first configuration (falls back to the given algorithm).
    pub fn hybrid(algo: Algo) -> Self {
        PtmConfig {
            algo,
            htm_retries: 4,
            ..Self::default()
        }
    }

    /// Default configuration running `algo`.
    pub fn with_algo(algo: Algo) -> Self {
        PtmConfig {
            algo,
            ..Self::default()
        }
    }

    pub fn redo() -> Self {
        Self::with_algo(Algo::RedoLazy)
    }

    pub fn undo() -> Self {
        Self::with_algo(Algo::UndoEager)
    }

    pub fn cow() -> Self {
        Self::with_algo(Algo::CowShadow)
    }

    pub fn htm_logged() -> Self {
        Self::with_algo(Algo::HtmLogged)
    }

    /// The given algorithm with the write-combining commit pipeline on.
    pub fn combined(algo: Algo) -> Self {
        PtmConfig {
            algo,
            write_combining: true,
            ..Self::default()
        }
    }

    /// The given algorithm with cross-transaction group commit on.
    pub fn grouped(algo: Algo) -> Self {
        PtmConfig {
            algo,
            group_commit: true,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = PtmConfig::default();
        assert!(c.split_log_index, "paper's tuned algorithms split the log");
        assert!(c.ts_extension, "every optimization enabled");
        assert!(!c.elide_fences, "fence elision is an incorrect variant");
        assert!(!c.write_combining, "write combining is the ablation arm");
        assert!(!c.group_commit, "group commit is opt-in");
        assert_eq!(c.htm_fastpath_threshold, 0, "fallback pacing is opt-in");
        assert!(c.max_backoff_ns > 0, "backoff ceiling must be positive");
    }

    #[test]
    fn grouped_turns_on_group_commit() {
        let c = PtmConfig::grouped(Algo::RedoLazy);
        assert!(c.group_commit);
        assert!(c.group_window_ns > 0);
    }

    #[test]
    fn combined_turns_on_write_combining() {
        let c = PtmConfig::combined(Algo::UndoEager);
        assert_eq!(c.algo, Algo::UndoEager);
        assert!(c.write_combining);
    }

    #[test]
    fn constructors_pick_algorithms() {
        assert_eq!(PtmConfig::redo().algo, Algo::RedoLazy);
        assert_eq!(PtmConfig::undo().algo, Algo::UndoEager);
        assert_eq!(PtmConfig::cow().algo, Algo::CowShadow);
        assert_eq!(PtmConfig::htm_logged().algo, Algo::HtmLogged);
        for algo in Algo::ALL {
            assert_eq!(PtmConfig::with_algo(algo).algo, algo);
        }
        assert_eq!(Algo::RedoLazy.label(), "R");
        assert_eq!(Algo::UndoEager.label(), "U");
        assert_eq!(Algo::CowShadow.label(), "C");
        assert_eq!(Algo::HtmLogged.label(), "H");
    }

    #[test]
    fn display_fromstr_round_trips() {
        for algo in Algo::ALL {
            let s = algo.to_string();
            assert_eq!(s.parse::<Algo>().unwrap(), algo, "{s}");
        }
        assert!("nope".parse::<Algo>().is_err());
    }
}
