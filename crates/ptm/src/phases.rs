//! Per-transaction phase accounting over virtual time.
//!
//! The paper's argument (§III-B) is an accounting one: Optane transactions
//! lose to DRAM because of the fences and flushes *inside* the critical
//! section, not the raw media latency. This module makes that breakdown
//! directly measurable: every [`crate::TxThread`] charges the virtual
//! nanoseconds between phase boundaries to one of eight [`Phase`]s, and
//! drains the per-thread totals into the shared [`PhaseStats`] on its
//! [`crate::Ptm`] at the end of each top-level `run` call.
//!
//! Attribution rules (uniform across algorithms):
//!
//! * every `clwb` issued by the PTM is charged to [`Phase::Flush`] —
//!   including the batched drains of the write-combining planner
//!   (`LineSet` → `clwb_batch`), so naive and combined pipelines stay
//!   directly comparable in the phase breakdown;
//! * every `sfence` is charged to [`Phase::FenceWait`] (this includes the
//!   WPQ-acceptance wait the paper measures — under eADR both collapse to
//!   zero because the session elides the instructions);
//! * log-entry construction (redo append, undo pre-image persist, commit
//!   markers, log truncation) is [`Phase::LogAppend`];
//! * commit-time orec acquisition, read-set validation and orec release
//!   are [`Phase::Validation`];
//! * copying redo values in place at commit is [`Phase::Writeback`];
//! * undoing speculative state after an abort is [`Phase::Rollback`];
//! * contention backoff is [`Phase::Backoff`];
//! * everything else — transactional reads, orec probes during execution,
//!   in-place speculative stores, allocator work — is
//!   [`Phase::Speculation`].
//!
//! The accounting is *complete*: between `run`'s entry and exit every
//! elapsed virtual nanosecond is charged to exactly one phase (asserted
//! by a driver test: single-threaded, the phase sum equals elapsed
//! virtual time).

use std::sync::atomic::{AtomicU64, Ordering};

/// Where a transaction's virtual time goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Speculative execution: reads, orec probes, in-place stores.
    Speculation = 0,
    /// Building/persisting log entries and commit markers.
    LogAppend = 1,
    /// `clwb` instructions (incl. WPQ back-pressure stalls at flush
    /// time, and the write-combining planner's batched `clwb_batch`
    /// drains).
    Flush = 2,
    /// `sfence` instructions: waiting for flush acceptance.
    FenceWait = 3,
    /// Commit-time orec acquisition, read validation, orec release.
    Validation = 4,
    /// Copying committed redo values into place.
    Writeback = 5,
    /// Undoing speculative state after an abort.
    Rollback = 6,
    /// Contention backoff between retries.
    Backoff = 7,
}

/// Number of phases (array dimension).
pub const PHASE_COUNT: usize = 8;

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Speculation,
        Phase::LogAppend,
        Phase::Flush,
        Phase::FenceWait,
        Phase::Validation,
        Phase::Writeback,
        Phase::Rollback,
        Phase::Backoff,
    ];

    /// Short stable label (column header / JSON key).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Speculation => "speculation",
            Phase::LogAppend => "log_append",
            Phase::Flush => "flush",
            Phase::FenceWait => "fence_wait",
            Phase::Validation => "validation",
            Phase::Writeback => "writeback",
            Phase::Rollback => "rollback",
            Phase::Backoff => "backoff",
        }
    }
}

/// Shared per-[`crate::Ptm`] phase totals (relaxed atomics, like
/// [`crate::PtmStats`]).
#[derive(Debug, Default)]
pub struct PhaseStats {
    ns: [AtomicU64; PHASE_COUNT],
}

impl PhaseStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a thread-local accumulation in (one atomic add per non-zero
    /// phase).
    pub fn merge_local(&self, local: &[u64; PHASE_COUNT]) {
        for (slot, &v) in self.ns.iter().zip(local) {
            if v != 0 {
                slot.fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    pub fn snapshot(&self) -> PhaseSnapshot {
        let mut ns = [0u64; PHASE_COUNT];
        for (out, slot) in ns.iter_mut().zip(&self.ns) {
            *out = slot.load(Ordering::Relaxed);
        }
        PhaseSnapshot { ns }
    }

    /// Zero all phase totals (between benchmark phases).
    pub fn reset(&self) {
        for slot in &self.ns {
            slot.store(0, Ordering::Relaxed);
        }
    }
}

/// Plain-value snapshot of [`PhaseStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    pub ns: [u64; PHASE_COUNT],
}

impl PhaseSnapshot {
    #[inline]
    pub fn get(&self, p: Phase) -> u64 {
        self.ns[p as usize]
    }

    /// Sum over all phases.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Fraction of total time spent in `p` (0.0 when nothing recorded).
    pub fn share(&self, p: Phase) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.get(p) as f64 / total as f64
        }
    }

    /// The paper's §III-B headline number: fraction of transaction time
    /// spent persisting (flushes + fence waits).
    pub fn persistence_share(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            (self.get(Phase::Flush) + self.get(Phase::FenceWait)) as f64 / total as f64
        }
    }

    /// Saturating per-phase difference (robust to a concurrent `reset`).
    pub fn delta_since(&self, earlier: &PhaseSnapshot) -> PhaseSnapshot {
        let mut ns = [0u64; PHASE_COUNT];
        for (i, slot) in ns.iter_mut().enumerate() {
            *slot = self.ns[i].saturating_sub(earlier.ns[i]);
        }
        PhaseSnapshot { ns }
    }
}

/// Zero-allocation phase stopwatch owned by a [`crate::TxThread`].
///
/// Reads the session clock only at phase boundaries; all state is a fixed
/// array plus two words. `start` opens an accounting interval, `switch`
/// moves between phases (returning the previous phase so nested scopes can
/// restore it), and `drain` closes the interval and publishes into the
/// shared [`PhaseStats`].
#[derive(Debug)]
pub struct PhaseTimer {
    acc: [u64; PHASE_COUNT],
    mark: u64,
    current: Phase,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    pub fn new() -> Self {
        PhaseTimer {
            acc: [0; PHASE_COUNT],
            mark: 0,
            current: Phase::Speculation,
        }
    }

    /// Open an accounting interval at virtual time `now` (charges
    /// nothing).
    #[inline]
    pub fn start(&mut self, now: u64) {
        self.mark = now;
        self.current = Phase::Speculation;
    }

    /// Charge `now - mark` to the current phase and enter `next`.
    /// Returns the previous phase for later restoration.
    #[inline]
    pub fn switch(&mut self, now: u64, next: Phase) -> Phase {
        let prev = self.current;
        self.acc[prev as usize] += now.saturating_sub(self.mark);
        self.mark = now;
        self.current = next;
        prev
    }

    /// Close the interval at `now` and publish the accumulated totals.
    #[inline]
    pub fn drain(&mut self, now: u64, shared: &PhaseStats) {
        self.acc[self.current as usize] += now.saturating_sub(self.mark);
        self.mark = now;
        shared.merge_local(&self.acc);
        self.acc = [0; PHASE_COUNT];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_charges_boundaries_exactly() {
        let shared = PhaseStats::new();
        let mut t = PhaseTimer::new();
        t.start(100);
        t.switch(130, Phase::Flush); // 30 ns of speculation
        t.switch(150, Phase::FenceWait); // 20 ns of flush
        t.switch(180, Phase::Speculation); // 30 ns of fence wait
        t.drain(200, &shared); // 20 ns of speculation
        let s = shared.snapshot();
        assert_eq!(s.get(Phase::Speculation), 50);
        assert_eq!(s.get(Phase::Flush), 20);
        assert_eq!(s.get(Phase::FenceWait), 30);
        assert_eq!(s.total_ns(), 100);
    }

    #[test]
    fn drain_resets_local_and_accumulates_shared() {
        let shared = PhaseStats::new();
        let mut t = PhaseTimer::new();
        t.start(0);
        t.drain(10, &shared);
        t.start(10);
        t.drain(15, &shared);
        assert_eq!(shared.snapshot().get(Phase::Speculation), 15);
    }

    #[test]
    fn nested_switch_restore_pattern() {
        let shared = PhaseStats::new();
        let mut t = PhaseTimer::new();
        t.start(0);
        let prev = t.switch(10, Phase::LogAppend);
        let prev2 = t.switch(14, Phase::Flush);
        t.switch(20, prev2); // back to LogAppend
        t.switch(25, prev); // back to Speculation
        t.drain(30, &shared);
        let s = shared.snapshot();
        assert_eq!(s.get(Phase::Speculation), 15);
        assert_eq!(s.get(Phase::LogAppend), 9);
        assert_eq!(s.get(Phase::Flush), 6);
    }

    #[test]
    fn share_and_persistence_share() {
        let shared = PhaseStats::new();
        let mut t = PhaseTimer::new();
        t.start(0);
        t.switch(50, Phase::Flush);
        t.switch(75, Phase::FenceWait);
        t.drain(100, &shared);
        let s = shared.snapshot();
        assert!((s.share(Phase::Speculation) - 0.5).abs() < 1e-9);
        assert!((s.persistence_share() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn snapshot_delta_saturates() {
        let a = PhaseSnapshot {
            ns: [10; PHASE_COUNT],
        };
        let b = PhaseSnapshot {
            ns: [4; PHASE_COUNT],
        };
        assert_eq!(b.delta_since(&a).total_ns(), 0);
        assert_eq!(a.delta_since(&b).get(Phase::Flush), 6);
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in Phase::ALL {
            assert!(seen.insert(p.label()));
        }
    }
}
