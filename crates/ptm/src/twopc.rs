//! Cross-shard transactions: two-phase commit over the per-shard logs.
//!
//! A [`CrossShardTx`] relaxes the sharded engine's one-executor-per-shard
//! seam: it holds (lazily created) per-shard [`TxThread`]s and lets one
//! logical transaction read and write several shards. Work that touches
//! a single shard takes exactly the single-shard commit path — same
//! counters, same fences, same virtual time — so the relaxation costs
//! nothing until a transaction actually spans shards.
//!
//! ## The commit protocol
//!
//! With two or more *writer* participants, commit runs 2PC over the
//! shards' existing per-thread logs:
//!
//! 1. **Acquire + validate** (per shard, ascending shard order): the
//!    ordinary orec acquisition and TL2 read validation each shard's
//!    policy already implements, against that shard's clock.
//! 2. **Prepare** (per shard): [`crate::algo::LogPolicy::make_prepared`]
//!    seals the shard's log under a `PREPARED` marker carrying a global
//!    transaction id (gtid) instead of `COMMITTED` — the log's content
//!    is durable, but its *fate* is not yet decided.
//! 3. **Decide**: one record — `(gtid, seal(gtid))` on a single cache
//!    line — is written to the coordinator shard's
//!    [`crate::log::COORD_POOL`] and flushed + fenced. That fence is the
//!    transaction's durability point. The coordinator is the lowest
//!    participant shard; the record lives in an ordinary persistent
//!    pool so it rides the same crash/imaging machinery as every log.
//! 4. **Commit** (per shard): [`crate::algo::LogPolicy::commit_prepared`]
//!    upgrades/retires the log and publishes the write set exactly as a
//!    single-shard commit would.
//! 5. **Forget**: the record slot is tombstoned with a plain store (no
//!    flush, no fence — a stale record is harmless: recovery ignores
//!    decisions for which no `PREPARED` log exists, then durably zeroes
//!    every slot).
//!
//! A crash anywhere in 1–2 aborts the transaction on recovery (presumed
//! abort: no durable decision record); a crash in 3–5 after the decide
//! fence commits it everywhere ([`crate::recovery::resolve_in_doubt`]).
//!
//! ## Fence budget
//!
//! Under ADR, a cross-shard commit with `P` writer participants pays
//! roughly `2·P` fences to prepare (log lines + marker, per shard, for
//! the O(1)-fence policies), **1** decide fence, and `~2·P` to publish
//! and retire — versus `~4` total for the same work in one shard.
//! Under eADR-class domains every one of those `clwb`/`sfence` pairs is
//! elided by the memory session, so the entire prepare/decide overhead
//! collapses and 2PC costs only the extra log marker stores.
//!
//! ## Virtual-time coherence
//!
//! Each shard machine has its own virtual clock domain. A cross-shard
//! transaction keeps one logical timeline by advancing a shard's session
//! to the worker's current frontier (`max` over its active sessions) on
//! first touch — a no-op for the single-shard case, which preserves
//! bit-identical single-shard timing. Drivers must run cross-shard
//! workers under an unbounded lag window (`window_ns == u64::MAX`):
//! a shard session that a worker leaves idle would otherwise pin its
//! domain's bounded-lag minimum and stall the other shards.

use pmem_sim::PAddr;
use trace::{AbortCause, EventKind};

use crate::log::{coord_seal, COORD_SLOT_WORDS};
use crate::phases::Phase;
use crate::shard::ShardedEngine;
use crate::stats::PtmStats;
use crate::txn::{Abort, TxResult, TxThread};

/// A cross-shard transaction executor for one worker (`tid`) over a
/// [`ShardedEngine`]. Per-shard executors (and their persistent logs)
/// are created lazily on first touch and reused across transactions.
pub struct CrossShardTx<'e> {
    engine: &'e ShardedEngine,
    tid: usize,
    slots: Vec<Option<TxThread>>,
    /// Shards touched by the current attempt, in first-touch order.
    active: Vec<usize>,
    /// This worker's cross-shard virtual-time frontier.
    now_max: u64,
}

impl<'e> CrossShardTx<'e> {
    /// Create an executor for virtual thread `tid`. Every shard machine
    /// must have been started (`begin_run_all`) with at least `tid + 1`
    /// threads and an unbounded lag window (see the module docs).
    pub fn new(engine: &'e ShardedEngine, tid: usize) -> CrossShardTx<'e> {
        CrossShardTx {
            engine,
            tid,
            slots: (0..engine.shards()).map(|_| None).collect(),
            active: Vec::new(),
            now_max: 0,
        }
    }

    /// Run `f` as a transaction over any subset of shards, retrying on
    /// aborts until it commits. The closure must propagate `Err(Abort)`
    /// (use `?`), exactly like [`TxThread::run`].
    ///
    /// Cross-shard transactions always use the software path — the 2PC
    /// prepare/decide split has no hardware-section equivalent. Purely
    /// single-shard work should prefer [`CrossShardTx::run_single`],
    /// which delegates to the unmodified single-shard driver (HTM fast
    /// path included).
    pub fn run<T>(&mut self, mut f: impl FnMut(&mut CrossTx<'_, 'e>) -> TxResult<T>) -> T {
        let mut attempts: u32 = 0;
        loop {
            self.active.clear();
            let outcome = f(&mut CrossTx { cs: self });
            match outcome {
                Ok(v) => {
                    if self.active.is_empty() {
                        return v; // touched nothing: trivially committed
                    }
                    if self.try_commit_cross() {
                        return v;
                    }
                }
                Err(Abort) => {
                    for i in 0..self.active.len() {
                        let th = self.slots[self.active[i]].as_mut().unwrap();
                        th.policy.abort_rollback(&mut th.ax, None);
                    }
                }
            }
            // Failed attempt: per-participant cleanup, shared backoff.
            let lead = *self
                .active
                .iter()
                .min()
                .expect("aborted with no participants");
            attempts += 1;
            {
                let th = self.slots[lead].as_mut().unwrap();
                PtmStats::bump(&th.ax.ptm.stats.aborts);
                if th.ax.ptm.config.tracing {
                    let (cause, orec) = th
                        .ax
                        .pending_abort
                        .take()
                        .unwrap_or((AbortCause::User as u64, 0));
                    th.ax.s.trace_event(EventKind::TxAbort, cause, orec);
                }
                assert!(
                    attempts < th.ax.ptm.config.max_retries,
                    "cross-shard livelock: {attempts} consecutive aborts on worker {}",
                    self.tid
                );
            }
            for i in 0..self.active.len() {
                let th = self.slots[self.active[i]].as_mut().unwrap();
                th.ax.abort_cleanup();
            }
            {
                let th = self.slots[lead].as_mut().unwrap();
                th.ax.attempts = attempts;
                th.ax.backoff();
            }
            self.drain_active();
        }
    }

    /// Run `f` as an ordinary single-shard transaction on `shard`: the
    /// unmodified [`TxThread::run`] driver, bit-identical to an executor
    /// obtained from [`ShardedEngine::thread`].
    pub fn run_single<T>(
        &mut self,
        shard: usize,
        f: impl FnMut(&mut crate::txn::Tx<'_>) -> TxResult<T>,
    ) -> T {
        self.ensure_slot(shard);
        self.slots[shard].as_mut().unwrap().run(f)
    }

    /// The underlying per-shard executor (creating it if needed), for
    /// non-transactional phases such as allocation during setup.
    pub fn thread_mut(&mut self, shard: usize) -> &mut TxThread {
        self.ensure_slot(shard);
        self.slots[shard].as_mut().unwrap()
    }

    /// Finish every per-shard session this worker actually created
    /// (deregistering them from their clock domains). Call once at the
    /// end of a driver loop, like `MemSession::finish`.
    pub fn finish(&mut self) {
        for slot in self.slots.iter_mut().flatten() {
            slot.session_mut().finish();
        }
    }

    /// This worker's virtual-time frontier: the largest `now` across its
    /// per-shard sessions. Drivers use consecutive frontier readings as
    /// the per-operation latency of a cross-shard transaction.
    pub fn frontier(&self) -> u64 {
        let live = self
            .slots
            .iter()
            .flatten()
            .map(|th| th.ax.s.now())
            .max()
            .unwrap_or(0);
        live.max(self.now_max)
    }

    fn ensure_slot(&mut self, shard: usize) {
        assert!(shard < self.slots.len(), "shard {shard} out of range");
        if self.slots[shard].is_none() {
            self.slots[shard] = Some(self.engine.thread(shard, self.tid));
        }
    }

    /// First-touch bookkeeping for the current attempt: create the
    /// executor if needed, advance the shard's session to the worker's
    /// time frontier, and open the per-shard attempt.
    fn touch(&mut self, shard: usize) -> &mut TxThread {
        if !self.active.contains(&shard) {
            self.ensure_slot(shard);
            for &s in &self.active {
                let t = self.slots[s].as_ref().unwrap().ax.s.now();
                self.now_max = self.now_max.max(t);
            }
            let th = self.slots[shard].as_mut().unwrap();
            th.ax.s.advance_to(self.now_max);
            let now = th.ax.s.now();
            self.now_max = self.now_max.max(now);
            th.ax.timer.start(now);
            th.ax.begin();
            self.active.push(shard);
        }
        self.slots[shard].as_mut().unwrap()
    }

    /// Close every active participant's phase-accounting interval and
    /// refresh the worker's time frontier.
    fn drain_active(&mut self) {
        for i in 0..self.active.len() {
            let th = self.slots[self.active[i]].as_mut().unwrap();
            let now = th.ax.s.now();
            th.ax.timer.drain(now, &th.ax.ptm.phases);
            self.now_max = self.now_max.max(now);
        }
    }

    /// The cross-shard commit sequence. Returns `false` (with every
    /// participant rolled back and released) if acquisition or
    /// validation fails on any shard.
    fn try_commit_cross(&mut self) -> bool {
        let mut shards = self.active.clone();
        shards.sort_unstable();
        let writers: Vec<usize> = shards
            .iter()
            .copied()
            .filter(|&s| {
                let th = self.slots[s].as_ref().unwrap();
                !th.policy.read_only(&th.ax)
            })
            .collect();

        match writers.len() {
            0 => {
                // All participants read-only: per-read validation already
                // guaranteed each shard's snapshot; nothing to decide.
                for &s in &shards {
                    self.slots[s].as_mut().unwrap().ax.apply_frees();
                }
                self.finish_commit(shards[0], 0, 0);
                return true;
            }
            1 => {
                // One writer: 2PC adds nothing — run the ordinary
                // single-shard commit sequence on that shard.
                if !self.single_commit(writers[0]) {
                    return false;
                }
                for &s in &shards {
                    if s != writers[0] {
                        self.slots[s].as_mut().unwrap().ax.apply_frees();
                    }
                }
                self.finish_commit(shards[0], 0, 0);
                return true;
            }
            _ => {}
        }

        // --- Phase 1: acquire + validate on every writer shard --------
        for (k, &s) in writers.iter().enumerate() {
            let th = self.slots[s].as_mut().unwrap();
            let now = th.ax.s.now();
            th.ax.timer.switch(now, Phase::Validation);
            if !th.policy.pre_commit_acquire(&mut th.ax) {
                for &p in &writers[..k] {
                    let th = self.slots[p].as_mut().unwrap();
                    th.policy.abort_rollback(&mut th.ax, None);
                }
                return false;
            }
        }
        let mut wvs = Vec::with_capacity(writers.len());
        for &s in &writers {
            let th = self.slots[s].as_mut().unwrap();
            let wv = th.ax.ptm.clock.bump();
            th.ax.commit_wv = wv;
            th.ax.s.advance(th.ax.ptm.config.orec_ns);
            wvs.push(wv);
        }
        for (k, &s) in writers.iter().enumerate() {
            let th = self.slots[s].as_mut().unwrap();
            let wv = wvs[k];
            if wv == th.ax.start_time + 2 {
                continue; // validation elision, per shard
            }
            if let Err(o) = th.ax.validate_reads() {
                PtmStats::bump(&th.ax.ptm.stats.aborts_validation);
                th.ax.abort_at(AbortCause::Validation, o);
                for (j, &p) in writers.iter().enumerate() {
                    let th = self.slots[p].as_mut().unwrap();
                    th.policy.abort_rollback(&mut th.ax, Some(wvs[j]));
                }
                return false;
            }
            let reads = th.ax.read_set.len() as u64;
            th.ax.trace(EventKind::TxValidate, reads, wv);
        }

        // --- Phase 2: prepare every writer shard's log ----------------
        let gtid = self.engine.next_gtid();
        for &s in &writers {
            let th = self.slots[s].as_mut().unwrap();
            let t0 = th.ax.s.now();
            th.policy.make_prepared(&mut th.ax, gtid);
            let dt = th.ax.s.now().saturating_sub(t0);
            PtmStats::bump(&th.ax.ptm.stats.prepares);
            PtmStats::add(&th.ax.ptm.stats.prepare_fence_ns, dt);
        }

        // --- Decide: durable coordinator record -----------------------
        let coord = writers[0];
        let slot_words = (self.engine.next_coord_slot() * COORD_SLOT_WORDS) as u64;
        let rec: PAddr = self.engine.coord_pool(coord).addr(slot_words);
        {
            let th = self.slots[coord].as_mut().unwrap();
            let now = th.ax.s.now();
            th.ax.timer.switch(now, Phase::LogAppend);
            th.ax.s.store(rec, gtid);
            th.ax.s.store(rec.offset(1), coord_seal(gtid));
            th.ax.flush_line(rec);
            th.ax.fence(); // the transaction's durability point
            PtmStats::bump(&th.ax.ptm.stats.coordinator_commits);
        }

        // --- Phase 3: commit every participant, then forget -----------
        for (k, &s) in writers.iter().enumerate() {
            let th = self.slots[s].as_mut().unwrap();
            th.policy.commit_prepared(&mut th.ax, wvs[k]);
            let n = th.policy.write_set_size(&th.ax);
            th.ax.ptm.stats.note_write_set(n);
            th.ax.note_read_set();
            th.ax.apply_frees();
        }
        for &s in &shards {
            if !writers.contains(&s) {
                self.slots[s].as_mut().unwrap().ax.apply_frees();
            }
        }
        {
            // Tombstone: plain store, deliberately unflushed (see module
            // docs — a stale decision record is ignored by recovery).
            let th = self.slots[coord].as_mut().unwrap();
            th.ax.s.store(rec, 0);
        }
        let n = {
            let th = self.slots[coord].as_ref().unwrap();
            th.policy.write_set_size(&th.ax)
        };
        self.finish_commit(coord, n, gtid);
        true
    }

    /// The unmodified single-shard commit sequence (mirrors the private
    /// `TxThread::try_commit`), for cross-shard attempts that turn out
    /// to have at most one writer participant.
    fn single_commit(&mut self, shard: usize) -> bool {
        let th = self.slots[shard].as_mut().unwrap();
        let now = th.ax.s.now();
        th.ax.timer.switch(now, Phase::Validation);
        if !th.policy.pre_commit_acquire(&mut th.ax) {
            return false;
        }
        let wv = th.ax.ptm.clock.bump();
        th.ax.commit_wv = wv;
        th.ax.s.advance(th.ax.ptm.config.orec_ns);
        if wv != th.ax.start_time + 2 {
            if let Err(o) = th.ax.validate_reads() {
                PtmStats::bump(&th.ax.ptm.stats.aborts_validation);
                th.ax.abort_at(AbortCause::Validation, o);
                th.policy.abort_rollback(&mut th.ax, Some(wv));
                return false;
            }
            let reads = th.ax.read_set.len() as u64;
            th.ax.trace(EventKind::TxValidate, reads, wv);
        }
        th.policy.make_durable(&mut th.ax);
        th.policy.commit_publish(&mut th.ax, wv);
        let n = th.policy.write_set_size(&th.ax);
        th.ax.ptm.stats.note_write_set(n);
        th.ax.note_read_set();
        th.ax.apply_frees();
        true
    }

    /// Shared commit epilogue: one `commits` bump (on the lead shard, so
    /// aggregate commits count transactions, not participants), the
    /// commit trace event (`b == 3` marks a cross-shard-handle commit —
    /// distinct from the HTM codes 1/2), and timer drain on every
    /// participant.
    fn finish_commit(&mut self, lead: usize, write_set: u64, _gtid: u64) {
        {
            let th = self.slots[lead].as_mut().unwrap();
            PtmStats::bump(&th.ax.ptm.stats.commits);
            th.ax.trace(EventKind::TxCommit, write_set, 3);
        }
        self.drain_active();
    }
}

/// Handle passed to cross-shard transaction closures: like
/// [`crate::txn::Tx`], but every operation names the shard it executes
/// on. Callers route with [`ShardedEngine::shard_of`] and may verify
/// with [`ShardedEngine::assert_routed`].
pub struct CrossTx<'a, 'e> {
    cs: &'a mut CrossShardTx<'e>,
}

impl CrossTx<'_, '_> {
    /// Transactional 64-bit read on `shard`.
    pub fn read(&mut self, shard: usize, addr: PAddr) -> TxResult<u64> {
        self.cs.touch(shard).tx_read(addr)
    }

    /// Transactional 64-bit write on `shard`.
    pub fn write(&mut self, shard: usize, addr: PAddr, val: u64) -> TxResult<()> {
        self.cs.touch(shard).tx_write(addr, val)
    }

    /// Read `base + off` on `shard`.
    pub fn read_at(&mut self, shard: usize, base: PAddr, off: u64) -> TxResult<u64> {
        self.cs.touch(shard).tx_read(base.offset(off))
    }

    /// Write `base + off` on `shard`.
    pub fn write_at(&mut self, shard: usize, base: PAddr, off: u64, val: u64) -> TxResult<()> {
        self.cs.touch(shard).tx_write(base.offset(off), val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PtmConfig;
    use crate::log::coord_seal;
    use pmem_sim::{DurabilityDomain, MachineConfig};
    use std::sync::Arc;

    fn cfg() -> MachineConfig {
        MachineConfig::functional(DurabilityDomain::Adr)
    }

    #[test]
    fn cross_shard_transfer_commits_atomically() {
        let e = ShardedEngine::create(2, cfg(), PtmConfig::redo(), 1 << 14, 4);
        e.begin_run_all(1, u64::MAX);
        let mut cx = CrossShardTx::new(&e, 0);
        let cells: Vec<PAddr> = (0..2)
            .map(|s| {
                let th = cx.thread_mut(s);
                let heap = Arc::clone(th.heap());
                heap.alloc(th.session_mut(), 1)
            })
            .collect();
        cx.run_single(0, |tx| tx.write(cells[0], 100));
        cx.run_single(1, |tx| tx.write(cells[1], 0));
        cx.run(|tx| {
            let a = tx.read(0, cells[0])?;
            let b = tx.read(1, cells[1])?;
            tx.write(0, cells[0], a - 40)?;
            tx.write(1, cells[1], b + 40)
        });
        assert_eq!(cx.run_single(0, |tx| tx.read(cells[0])), 60);
        assert_eq!(cx.run_single(1, |tx| tx.read(cells[1])), 40);
        let agg = e.aggregate_ptm_stats();
        assert_eq!(agg.prepares, 2, "one prepare per writer participant");
        assert_eq!(agg.coordinator_commits, 1, "one decision record");
        assert_eq!(agg.commits, 5, "4 single-shard + 1 cross-shard");
    }

    /// The regression the tentpole hangs on: single-shard work driven
    /// through the cross-shard handle is bit-identical (counters *and*
    /// virtual time) to the plain single-shard executor.
    #[test]
    fn single_shard_path_is_bit_identical_through_cross_handle() {
        fn scenario(cross: bool) -> (u64, u64, u64, u64) {
            let e = ShardedEngine::create(1, cfg(), PtmConfig::redo(), 1 << 14, 4);
            e.begin_run_all(1, u64::MAX);
            let v = if cross {
                let mut cx = CrossShardTx::new(&e, 0);
                let c = {
                    let th = cx.thread_mut(0);
                    let heap = Arc::clone(th.heap());
                    heap.alloc(th.session_mut(), 1)
                };
                cx.run(|tx| tx.write(0, c, 0));
                for i in 0..10u64 {
                    cx.run(|tx| {
                        let v = tx.read(0, c)?;
                        tx.write(0, c, v + i)
                    });
                }
                cx.run(|tx| tx.read(0, c))
            } else {
                let mut th = e.thread(0, 0);
                let heap = Arc::clone(e.heap(0));
                let c = heap.alloc(th.session_mut(), 1);
                th.run(|tx| tx.write(c, 0));
                for i in 0..10u64 {
                    th.run(|tx| {
                        let v = tx.read(c)?;
                        tx.write(c, v + i)
                    });
                }
                th.run(|tx| tx.read(c))
            };
            let agg = e.aggregate_ptm_stats();
            (v, e.max_run_time_ns(), agg.commits, agg.prepares)
        }
        let plain = scenario(false);
        let via_cross = scenario(true);
        assert_eq!(plain, via_cross);
        assert_eq!(via_cross.3, 0, "single-shard work must never prepare");
    }

    /// Hand-rolled in-doubt state: both shards PREPARED under one gtid,
    /// crash before (or after) the decision record. Resolution must
    /// abort (commit) both, and a second crash/reopen must be a no-op.
    #[test]
    fn in_doubt_logs_resolve_by_coordinator_record() {
        for decide_commit in [false, true] {
            let e = ShardedEngine::create(2, cfg(), PtmConfig::redo(), 1 << 14, 4);
            e.begin_run_all(2, u64::MAX);
            let mut cells = Vec::new();
            for s in 0..2 {
                let mut th = e.thread(s, 0);
                let heap = Arc::clone(e.heap(s));
                let c = heap.alloc(th.session_mut(), 1);
                th.run(|tx| tx.write(c, 1));
                heap.set_root(th.session_mut(), 0, c);
                cells.push(c);
            }
            let gtid = 7u64;
            for s in 0..2 {
                let mut th = e.thread(s, 1);
                th.ax.begin();
                th.policy.on_write(&mut th.ax, cells[s], 2).unwrap();
                assert!(th.policy.pre_commit_acquire(&mut th.ax));
                let wv = th.ptm().clock.bump();
                th.ax.commit_wv = wv;
                th.policy.make_prepared(&mut th.ax, gtid);
                // Crash before commit_prepared: the log is in doubt.
            }
            if decide_commit {
                let pool = e.coord_pool(0);
                pool.raw_store(0, gtid);
                pool.raw_store(1, coord_seal(gtid));
                pool.persist_line_now(0);
            }
            let images = e.crash_all(5);
            let (e2, reports) = ShardedEngine::reopen(&images, cfg(), PtmConfig::redo());
            let commits: usize = reports
                .iter()
                .map(|r| r.recovery.indoubt_resolved_commit)
                .sum();
            let aborts: usize = reports
                .iter()
                .map(|r| r.recovery.indoubt_resolved_abort)
                .sum();
            let skipped: usize = reports.iter().map(|r| r.recovery.prepared_skipped).sum();
            assert_eq!(skipped, 2, "per-shard pass must leave both in doubt");
            if decide_commit {
                assert_eq!((commits, aborts), (2, 0));
            } else {
                assert_eq!((commits, aborts), (0, 2));
            }
            let expected = if decide_commit { 2 } else { 1 };
            e2.begin_run_all(1, u64::MAX);
            for s in 0..2 {
                let c = e2.heap(s).root_raw(0);
                let mut th = e2.thread(s, 0);
                assert_eq!(th.run(|tx| tx.read(c)), expected, "shard {s}");
            }
            // Idempotence: a second crash/reopen finds nothing in doubt
            // and every coordinator slot durably zeroed.
            let images2 = e2.crash_all(9);
            let (e3, reports2) = ShardedEngine::reopen(&images2, cfg(), PtmConfig::redo());
            for r in &reports2 {
                assert_eq!(r.recovery.prepared_skipped, 0);
                assert_eq!(r.recovery.indoubt_resolved_commit, 0);
                assert_eq!(r.recovery.indoubt_resolved_abort, 0);
            }
            for s in 0..2 {
                let pool = e3.coord_pool(s);
                for w in 0..(crate::log::COORD_SLOTS * COORD_SLOT_WORDS) as u64 {
                    assert_eq!(pool.raw_load(w), 0, "coord slot word {w} on shard {s}");
                }
            }
        }
    }

    /// Cross-shard transactions survive a post-commit crash: the decide
    /// fence is the durability point, so a committed transfer must be
    /// visible on both shards after reopen.
    #[test]
    fn committed_cross_shard_transfer_survives_crash() {
        for algo in [
            PtmConfig::redo(),
            PtmConfig::undo(),
            PtmConfig::cow(),
            PtmConfig::htm_logged(),
        ] {
            let e = ShardedEngine::create(2, cfg(), algo.clone(), 1 << 14, 4);
            e.begin_run_all(1, u64::MAX);
            let mut cx = CrossShardTx::new(&e, 0);
            let cells: Vec<PAddr> = (0..2)
                .map(|s| {
                    let th = cx.thread_mut(s);
                    let heap = Arc::clone(th.heap());
                    let c = heap.alloc(th.session_mut(), 1);
                    heap.set_root(th.session_mut(), 0, c);
                    c
                })
                .collect();
            cx.run_single(0, |tx| tx.write(cells[0], 90));
            cx.run_single(1, |tx| tx.write(cells[1], 10));
            cx.run(|tx| {
                let a = tx.read(0, cells[0])?;
                let b = tx.read(1, cells[1])?;
                tx.write(0, cells[0], a - 25)?;
                tx.write(1, cells[1], b + 25)
            });
            drop(cx);
            let images = e.crash_all(13);
            let (e2, _) = ShardedEngine::reopen(&images, cfg(), algo.clone());
            e2.begin_run_all(1, u64::MAX);
            let mut total = 0;
            for s in 0..2 {
                let c = e2.heap(s).root_raw(0);
                let mut th = e2.thread(s, 0);
                total += th.run(|tx| tx.read(c));
            }
            assert_eq!(total, 100, "algo {:?}", algo.algo);
            let a = {
                let c = e2.heap(0).root_raw(0);
                let mut th = e2.thread(0, 0);
                th.run(|tx| tx.read(c))
            };
            assert_eq!(a, 65, "algo {:?}", algo.algo);
        }
    }
}
