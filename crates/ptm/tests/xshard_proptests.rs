//! Property-based tests of the cross-shard (2PC) transaction path.
//!
//! Two properties pin the PR 10 seam:
//!
//! * **differential** — a random program mixing single-shard and
//!   cross-shard transactions over a sharded engine commits exactly the
//!   state the same program commits on a serial single-engine run, for
//!   every algorithm × durability domain;
//! * **recovery order** — after a crash anywhere in the run (including
//!   inside a 2PC prepare/decide window), recovering the shards in *any*
//!   order, then resolving in-doubt participants, lands on bit-identical
//!   durable state and identical resolution counts.

use palloc::PHeap;
use pmem_sim::{
    catch_simulated_crash, silence_simulated_crash_panics, AdversaryPolicy, CrashImage,
    CrashInjector, DurabilityDomain, Machine, MachineConfig, PAddr,
};
use proptest::prelude::*;
use ptm::{
    recover_with_options, resolve_in_doubt, Abort, Algo, CrossShardTx, Ptm, PtmConfig,
    RecoverOptions, ShardedEngine, TxThread, SHARD_HEAP_PREFIX,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const DOMAINS: [DurabilityDomain; 4] = [
    DurabilityDomain::Adr,
    DurabilityDomain::Eadr,
    DurabilityDomain::Pdram,
    DurabilityDomain::PdramLite,
];

const KEYS: u64 = 24;

/// Account `k`'s home shard and table offset under `shards` shards.
fn home(k: u64, shards: usize) -> (usize, u64) {
    ((k % shards as u64) as usize, k / shards as u64)
}

/// Run one program op against the sharded engine through the
/// cross-shard executor. Ops 0/3 take the unmodified single-shard fast
/// path; 1/2/4 go through the 2PC handle (op 4 user-aborts its first
/// attempt, so its writes must never become visible).
fn apply_sharded(
    cx: &mut CrossShardTx<'_>,
    tables: &[PAddr],
    shards: usize,
    op: u8,
    k1: u64,
    k2: u64,
    v: u64,
) {
    let (s1, o1) = home(k1, shards);
    let (s2, o2) = home(k2, shards);
    match op {
        0 => cx.run_single(s1, |tx| tx.write_at(tables[s1], o1, v)),
        1 => cx.run(|tx| {
            let b1 = tx.read_at(s1, tables[s1], o1)?;
            let b2 = tx.read_at(s2, tables[s2], o2)?;
            tx.write_at(s1, tables[s1], o1, b1 ^ v)?;
            if k1 != k2 {
                tx.write_at(s2, tables[s2], o2, b2.wrapping_add(v))?;
            }
            Ok(())
        }),
        2 => {
            cx.run(|tx| {
                let b1 = tx.read_at(s1, tables[s1], o1)?;
                let b2 = tx.read_at(s2, tables[s2], o2)?;
                Ok(b1.wrapping_add(b2))
            });
        }
        3 => {
            cx.run_single(s1, |tx| tx.read_at(tables[s1], o1));
        }
        _ => {
            let mut aborted_once = false;
            cx.run(|tx| {
                if !aborted_once {
                    tx.write_at(s1, tables[s1], o1, v.wrapping_mul(3))?;
                    tx.write_at(s2, tables[s2], o2, v.wrapping_mul(5))?;
                    aborted_once = true;
                    return Err(Abort);
                }
                Ok(())
            });
        }
    }
}

/// The same op against a plain single-engine executor holding all keys
/// in one table.
fn apply_single(th: &mut TxThread, base: PAddr, op: u8, k1: u64, k2: u64, v: u64) {
    match op {
        0 => th.run(|tx| tx.write_at(base, k1, v)),
        1 => th.run(|tx| {
            let b1 = tx.read_at(base, k1)?;
            let b2 = tx.read_at(base, k2)?;
            tx.write_at(base, k1, b1 ^ v)?;
            if k1 != k2 {
                tx.write_at(base, k2, b2.wrapping_add(v))?;
            }
            Ok(())
        }),
        2 => {
            th.run(|tx| {
                let b1 = tx.read_at(base, k1)?;
                let b2 = tx.read_at(base, k2)?;
                Ok(b1.wrapping_add(b2))
            });
        }
        3 => {
            th.run(|tx| tx.read_at(base, k1));
        }
        _ => {
            let mut aborted_once = false;
            th.run(|tx| {
                if !aborted_once {
                    tx.write_at(base, k1, v.wrapping_mul(3))?;
                    tx.write_at(base, k2, v.wrapping_mul(5))?;
                    aborted_once = true;
                    return Err(Abort);
                }
                Ok(())
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Differential: mixed single-/cross-shard programs on a sharded
    /// engine commit the same per-key state as the serial single-engine
    /// run, under every algorithm and durability domain.
    #[test]
    fn mixed_cross_shard_matches_single_engine(
        program in prop::collection::vec(
            (0u8..5, 0u64..KEYS, 0u64..KEYS, any::<u64>()),
            1..50,
        ),
        algo_idx in 0usize..Algo::ALL.len(),
        domain_idx in 0usize..DOMAINS.len(),
        shards in 2usize..4,
    ) {
        let algo = Algo::ALL[algo_idx];
        let domain = DOMAINS[domain_idx];
        let cfg = PtmConfig { algo, ..PtmConfig::default() };

        // Sharded arm.
        let engine = ShardedEngine::create(
            shards,
            MachineConfig::functional(domain),
            cfg.clone(),
            1 << 14,
            4,
        );
        engine.begin_run_all(1, u64::MAX);
        let mut cx = CrossShardTx::new(&engine, 0);
        let mut tables = Vec::with_capacity(shards);
        for s in 0..shards {
            let n = (0..KEYS).filter(|&k| home(k, shards).0 == s).count();
            let th = cx.thread_mut(s);
            let heap = Arc::clone(th.heap());
            let table = heap.alloc(th.session_mut(), n.max(1));
            cx.run_single(s, |tx| {
                for i in 0..n as u64 {
                    tx.write_at(table, i, 0)?;
                }
                Ok(())
            });
            tables.push(table);
        }
        for &(op, k1, k2, v) in &program {
            apply_sharded(&mut cx, &tables, shards, op, k1, k2, v);
        }
        let sharded_state: Vec<u64> = (0..KEYS)
            .map(|k| {
                let (s, off) = home(k, shards);
                cx.run_single(s, |tx| tx.read_at(tables[s], off))
            })
            .collect();
        cx.finish();

        // Serial single-engine reference.
        let m = Machine::new(MachineConfig::functional(domain));
        let heap = PHeap::format(&m, "h", 1 << 14, 4);
        let mut th = TxThread::new(Ptm::new(cfg), heap.clone(), m.session(0));
        let base = {
            let h = Arc::clone(&heap);
            h.alloc(th.session_mut(), KEYS as usize)
        };
        th.run(|tx| {
            for k in 0..KEYS {
                tx.write_at(base, k, 0)?;
            }
            Ok(())
        });
        for &(op, k1, k2, v) in &program {
            apply_single(&mut th, base, op, k1, k2, v);
        }
        let single_state: Vec<u64> = (0..KEYS)
            .map(|k| th.run(|tx| tx.read_at(base, k)))
            .collect();

        prop_assert_eq!(
            &sharded_state,
            &single_state,
            "{:?} under {:?} with {} shards diverged from the serial run",
            algo,
            domain,
            shards
        );
    }
}

/// Every permutation of `0..n` (the test sweeps n ≤ 3 shards, so full
/// enumeration stays tiny and deterministic).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    for p in permutations(n - 1) {
        for at in 0..=p.len() {
            let mut q = p.clone();
            q.insert(at, n - 1);
            out.push(q);
        }
    }
    out
}

/// FNV-1a over every word of every pool, across machines in shard order.
fn digest(machines: &[Arc<Machine>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for machine in machines {
        for pool in machine.pools() {
            for w in 0..pool.len_words() as u64 {
                h = (h ^ pool.raw_load(w)).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// Which shard a fired crash image belongs to, by its heap pool name.
fn crashed_shard(image: &CrashImage) -> usize {
    let prefix = format!("{SHARD_HEAP_PREFIX}-");
    image
        .pools
        .iter()
        .find_map(|p| p.name.strip_prefix(&prefix).and_then(|s| s.parse().ok()))
        .expect("fired crash image contains no shard heap pool")
}

/// Build a sharded engine, run a transfer workload, and crash it at
/// global `site` (sites counted across every shard machine by one
/// shared injector; `u64::MAX` = dry run). Returns one image per shard
/// plus the number of sites the run observed.
fn crash_at(
    shards: usize,
    algo: Algo,
    domain: DurabilityDomain,
    seed: u64,
    site: u64,
    policy: AdversaryPolicy,
) -> (Vec<CrashImage>, u64) {
    let run = |engine: &ShardedEngine| {
        engine.begin_run_all(1, u64::MAX);
        let mut cx = CrossShardTx::new(engine, 0);
        let accounts = 6u64;
        let mut tables = Vec::with_capacity(shards);
        for s in 0..shards {
            let n = (0..accounts).filter(|&k| home(k, shards).0 == s).count();
            let th = cx.thread_mut(s);
            let heap = Arc::clone(th.heap());
            let table = heap.alloc(th.session_mut(), n.max(1));
            cx.run_single(s, |tx| {
                for i in 0..n as u64 {
                    tx.write_at(table, i, 64)?;
                }
                Ok(())
            });
            tables.push(table);
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..6 {
            let from = rng.gen_range(0..accounts);
            let to = rng.gen_range(0..accounts);
            let amt = rng.gen_range(1..32u64);
            let (sf, of) = home(from, shards);
            let (st, ot) = home(to, shards);
            cx.run(|tx| {
                let f = tx.read_at(sf, tables[sf], of)?;
                let t = tx.read_at(st, tables[st], ot)?;
                if from != to && f >= amt {
                    tx.write_at(sf, tables[sf], of, f - amt)?;
                    tx.write_at(st, tables[st], ot, t + amt)?;
                }
                Ok(())
            });
        }
    };

    let cfg = PtmConfig {
        algo,
        ..PtmConfig::default()
    };
    let mcfg = MachineConfig::functional(domain);
    let engine = ShardedEngine::create(shards, mcfg.clone(), cfg, 1 << 14, 4);
    let injector = CrashInjector::at_site(site, policy, seed ^ 0xD1F0_5EED);
    for s in 0..shards {
        engine.machine(s).arm_injector(Arc::clone(&injector));
    }
    let _ = catch_simulated_crash(|| run(&engine));
    for s in 0..shards {
        engine.machine(s).disarm_injector();
    }
    let fired = injector.take_outcome();
    let fired_shard = fired.as_ref().map(|f| crashed_shard(&f.image));
    let images = (0..shards)
        .map(|s| {
            if Some(s) == fired_shard {
                fired.as_ref().unwrap().image.clone()
            } else {
                // Survivor shards (and the completed-run case) are imaged
                // under per-shard derived seeds, like the sweep harness.
                engine.machine(s).crash_with(
                    (seed ^ 0xD1F0_5EED) ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(s as u64),
                    policy,
                )
            }
        })
        .collect();
    (images, injector.sites_counted())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Recovery-order independence: rebooting the shards of one crash
    /// and running per-shard recovery in any permutation, followed by
    /// the in-doubt resolution pass, produces bit-identical durable
    /// state and identical resolution counts.
    #[test]
    fn recovery_is_shard_order_independent(
        seed in 0u64..1_000,
        algo_idx in 0usize..Algo::ALL.len(),
        site_frac in 0u64..1_000,
        policy_idx in 0usize..AdversaryPolicy::SWEEP.len(),
        shards in 2usize..4,
    ) {
        silence_simulated_crash_panics();
        let algo = Algo::ALL[algo_idx];
        let domain = DurabilityDomain::Adr;
        let policy = AdversaryPolicy::SWEEP[policy_idx];

        // Count the sites with a dry run, then land the crash in the
        // later half of the run, where 2PC prepare/decide windows live.
        let (_, total) = crash_at(shards, algo, domain, seed, u64::MAX, policy);
        let total = total.max(1);
        let site = total / 2 + site_frac % (total - total / 2).max(1);

        let (images, _) = crash_at(shards, algo, domain, seed, site, policy);

        let mut reference: Option<(u64, usize, usize)> = None;
        for perm in permutations(shards) {
            let machines: Vec<Arc<Machine>> = images
                .iter()
                .map(|img| Machine::reboot(img, MachineConfig::functional(domain)))
                .collect();
            for &s in &perm {
                recover_with_options(&machines[s], RecoverOptions::default());
            }
            let reports = resolve_in_doubt(&machines);
            let commits: usize = reports.iter().map(|r| r.indoubt_resolved_commit).sum();
            let aborts: usize = reports.iter().map(|r| r.indoubt_resolved_abort).sum();
            let d = digest(&machines);
            match reference {
                None => reference = Some((d, commits, aborts)),
                Some((d0, c0, a0)) => {
                    prop_assert_eq!(
                        (d, commits, aborts),
                        (d0, c0, a0),
                        "shard recovery order {:?} diverged ({:?}, site {}/{})",
                        perm,
                        algo,
                        site,
                        total
                    );
                }
            }
        }
    }
}
