//! Property-based tests of PTM internals and end-to-end transaction
//! semantics.

use palloc::PHeap;
use pmem_sim::{DurabilityDomain, Machine, MachineConfig, PAddr};
use proptest::prelude::*;
use ptm::umap::U64Map;
use ptm::{Algo, Ptm, PtmConfig, TxThread};
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// U64Map agrees with HashMap under arbitrary insert/get/clear mixes.
    #[test]
    fn umap_matches_hashmap(ops in prop::collection::vec((0u8..3, any::<u64>(), any::<u64>()), 1..300)) {
        let mut m = U64Map::new(8);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for &(op, k, v) in &ops {
            match op {
                0 => {
                    prop_assert_eq!(m.insert(k, v), model.insert(k, v));
                }
                1 => {
                    prop_assert_eq!(m.get(k), model.get(&k).copied());
                }
                _ => {
                    m.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(m.len(), model.len());
        }
    }

    /// Sequential transactions over random word programs behave exactly
    /// like direct memory, under every registered algorithm and with
    /// arbitrary transaction boundaries and user aborts.
    #[test]
    fn transactions_match_flat_memory(
        program in prop::collection::vec(
            // (op, addr, value): op 0..6 = write, 6..8 = read-check,
            // 8 = commit boundary, 9 = abort the pending transaction
            (0u8..10, 0u64..64, any::<u64>()),
            1..120,
        ),
        algo_idx in 0usize..Algo::ALL.len(),
    ) {
        let algo = Algo::ALL[algo_idx];
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "h", 1 << 14, 4);
        let cfg = PtmConfig { algo, ..PtmConfig::default() };
        let mut th = TxThread::new(Ptm::new(cfg), heap.clone(), m.session(0));
        let base = {
            let h = std::sync::Arc::clone(&heap);
            h.alloc(th.session_mut(), 64)
        };
        let mut committed: [u64; 64] = [0; 64];

        // Split the program into transactions at the boundaries.
        let mut chunk: Vec<(u8, u64, u64)> = Vec::new();
        let flush = |th: &mut TxThread, chunk: &mut Vec<(u8, u64, u64)>, committed: &mut [u64; 64], abort: bool| {
            if chunk.is_empty() {
                return Ok(()) as Result<(), TestCaseError>;
            }
            let ops = chunk.clone();
            let mut aborted_once = false;
            let speculative: Option<[u64; 64]> = th.run(|tx| {
                let mut local = *committed;
                for &(op, a, v) in &ops {
                    if op < 6 {
                        tx.write_at(base, a, v)?;
                        local[a as usize] = v;
                    } else {
                        let got = tx.read_at(base, a)?;
                        if got != local[a as usize] {
                            // Surface mismatches as a value we can assert on.
                            return Ok(None);
                        }
                    }
                }
                if abort && !aborted_once {
                    aborted_once = true;
                    return Err(ptm::Abort);
                }
                Ok(Some(local))
            });
            match speculative {
                Some(local) => *committed = local,
                None => prop_assert!(false, "in-transaction read mismatch"),
            }
            chunk.clear();
            Ok(())
        };

        for &(op, a, v) in &program {
            match op {
                8 => flush(&mut th, &mut chunk, &mut committed, false)?,
                9 => flush(&mut th, &mut chunk, &mut committed, true)?,
                _ => chunk.push((op, a, v)),
            }
        }
        flush(&mut th, &mut chunk, &mut committed, false)?;

        // Final memory state equals the committed model exactly.
        for a in 0..64u64 {
            let got = th.run(|tx| tx.read_at(base, a));
            prop_assert_eq!(got, committed[a as usize], "addr {}", a);
        }
        let _ = PAddr::NULL;
    }

    /// The write-combining commit pipeline is semantically transparent:
    /// for arbitrary sequential programs, the final memory equals the
    /// naive pipeline's under ADR (where the flush schedule matters).
    #[test]
    fn write_combining_matches_naive_memory(
        writes in prop::collection::vec((0u64..48, any::<u64>()), 1..80),
        algo_idx in 0usize..Algo::ALL.len(),
    ) {
        let algo = Algo::ALL[algo_idx];
        let run_with = |combining: bool| {
            let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
            let heap = PHeap::format(&m, "h", 1 << 14, 4);
            let cfg = PtmConfig { algo, write_combining: combining, ..PtmConfig::default() };
            let mut th = TxThread::new(Ptm::new(cfg), heap.clone(), m.session(0));
            let base = {
                let h = std::sync::Arc::clone(&heap);
                h.alloc(th.session_mut(), 48)
            };
            for chunk in writes.chunks(5) {
                th.run(|tx| {
                    for &(a, v) in chunk {
                        let old = tx.read_at(base, a)?;
                        tx.write_at(base, a, old ^ v)?;
                    }
                    Ok(())
                });
            }
            // Durable (shadow) state, not just cache-visible state. For
            // HtmLogged the home writeback is deliberately unfenced and
            // durability lives in the sealed back-end ring, so its
            // durable state is what a crash recovers to.
            if algo == Algo::HtmLogged {
                drop(th);
                let img = m.crash(0);
                let m2 = Machine::reboot(&img, MachineConfig::functional(DurabilityDomain::Adr));
                ptm::recover(&m2);
                return (0..48u64)
                    .map(|a| m2.pool(base.pool()).raw_load(base.word() + a))
                    .collect::<Vec<u64>>();
            }
            (0..48u64)
                .map(|a| heap.pool().shadow().unwrap().load(base.word() + a))
                .collect::<Vec<u64>>()
        };
        prop_assert_eq!(run_with(false), run_with(true));
    }

    /// The hybrid HTM path computes the same results as pure software for
    /// sequential programs.
    #[test]
    fn hybrid_matches_software(
        writes in prop::collection::vec((0u64..32, any::<u64>()), 1..60),
    ) {
        let run_with = |htm_retries: u32| {
            let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
            let heap = PHeap::format(&m, "h", 1 << 14, 4);
            let cfg = PtmConfig { htm_retries, ..PtmConfig::redo() };
            let mut th = TxThread::new(Ptm::new(cfg), heap.clone(), m.session(0));
            let base = {
                let h = std::sync::Arc::clone(&heap);
                h.alloc(th.session_mut(), 32)
            };
            for &(a, v) in &writes {
                th.run(|tx| {
                    let old = tx.read_at(base, a)?;
                    tx.write_at(base, a, v ^ old)
                });
            }
            (0..32u64)
                .map(|a| th.run(|tx| tx.read_at(base, a)))
                .collect::<Vec<u64>>()
        };
        prop_assert_eq!(run_with(0), run_with(4));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Routed through the PR 2 crash-site sweep: for random seeds and
    /// algorithms, the naive and write-combined pipelines both survive a
    /// bounded ADR site sweep violation-free, and an end-of-run crash
    /// (same armed site, same adversary coin flips) recovers both
    /// pipelines to the identical state digest.
    #[test]
    fn crash_sweep_is_clean_and_digests_match_across_pipelines(
        seed in 0u64..1_000,
        algo_idx in 0usize..Algo::ALL.len(),
        transfers in 2usize..5,
    ) {
        use pmem_sim::AdversaryPolicy;
        use ptm::crash_harness::{run_site, sweep_case, BankTransfers, SweepCase, SweepOptions};
        use ptm::RecoverOptions;

        let algo = Algo::ALL[algo_idx];
        let case = SweepCase {
            algo,
            domain: DurabilityDomain::Adr,
            policy: AdversaryPolicy::SWEEP[(seed % AdversaryPolicy::SWEEP.len() as u64) as usize],
            seed,
        };
        let bank = |combining: bool| BankTransfers {
            accounts: 4,
            initial: 64,
            transfers,
            write_combining: combining,
        };
        let opts = SweepOptions {
            max_sites_per_case: Some(6),
            ..SweepOptions::default()
        };
        for combining in [false, true] {
            let r = sweep_case(&bank(combining), &case, opts);
            let lines: Vec<String> = r.violations.iter().map(|v| v.to_string()).collect();
            prop_assert!(lines.is_empty(), "combining={}: {:?}", combining, lines);
        }
        // End-of-run crash at one fixed armed site: identical adversary
        // seed for both pipelines, so equal digests ⇒ the combined
        // pipeline leaves the machine in exactly the naive durable state.
        const END: u64 = 1 << 40;
        let naive = run_site(&bank(false), &case, END, RecoverOptions::default());
        let combined = run_site(&bank(true), &case, END, RecoverOptions::default());
        prop_assert!(naive.violations.is_empty(), "{:?}", naive.violations);
        prop_assert!(combined.violations.is_empty(), "{:?}", combined.violations);
        prop_assert_eq!(naive.state_digest, combined.state_digest);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cross-algorithm differential test: an identical sequential
    /// workload (random writes, reads, user aborts, arbitrary
    /// transaction boundaries) produces the identical committed heap
    /// state under every registered algorithm (redo, undo, cow shadow,
    /// htm-logged — the latter on its hardware path), in every
    /// durability domain. The algorithm seam may change *how* writes
    /// become durable, never *what* commits.
    #[test]
    fn algorithms_commit_identical_heap_state(
        program in prop::collection::vec(
            // (op, addr, value): op 0..7 = write, 7..9 = read,
            // 9 = commit boundary, 10 = user abort
            (0u8..11, 0u64..48, any::<u64>()),
            1..100,
        ),
        domain_idx in 0usize..4,
    ) {
        let domain = [
            DurabilityDomain::Adr,
            DurabilityDomain::Eadr,
            DurabilityDomain::Pdram,
            DurabilityDomain::PdramLite,
        ][domain_idx];
        let final_state = |algo: Algo| {
            let m = Machine::new(MachineConfig::functional(domain));
            let heap = PHeap::format(&m, "h", 1 << 14, 4);
            let cfg = PtmConfig { algo, htm_retries: 0, ..PtmConfig::default() };
            let mut th = TxThread::new(Ptm::new(cfg), heap.clone(), m.session(0));
            let base = {
                let h = std::sync::Arc::clone(&heap);
                h.alloc(th.session_mut(), 48)
            };
            let mut chunk: Vec<(u8, u64, u64)> = Vec::new();
            let run_chunk = |th: &mut TxThread, chunk: &[(u8, u64, u64)], abort: bool| {
                if chunk.is_empty() {
                    return;
                }
                let mut aborted_once = false;
                th.run(|tx| {
                    for &(op, a, v) in chunk {
                        if op < 7 {
                            tx.write_at(base, a, v)?;
                        } else {
                            tx.read_at(base, a)?;
                        }
                    }
                    if abort && !aborted_once {
                        aborted_once = true;
                        return Err(ptm::Abort);
                    }
                    Ok(())
                });
            };
            for &(op, a, v) in &program {
                match op {
                    9 => { run_chunk(&mut th, &chunk, false); chunk.clear(); }
                    10 => { run_chunk(&mut th, &chunk, true); chunk.clear(); }
                    _ => chunk.push((op, a, v)),
                }
            }
            run_chunk(&mut th, &chunk, false);
            // Committed (cache-visible) data-block state. Only the block
            // itself is compared: cow legitimately perturbs allocator
            // metadata by cycling shadow blocks.
            let pool = heap.pool();
            (0..48u64)
                .map(|a| pool.raw_load(base.word() + a))
                .collect::<Vec<u64>>()
        };
        let reference = final_state(Algo::ALL[0]);
        for &algo in &Algo::ALL[1..] {
            prop_assert_eq!(
                &reference,
                &final_state(algo),
                "{:?} diverged from {:?} under {:?}",
                algo,
                Algo::ALL[0],
                domain
            );
        }
    }
}
