//! Criterion microbenchmarks of the runtime's hot paths (real wall time,
//! not virtual time): orec operations, the transaction-local map, session
//! access costs, single transactions end to end, and B+Tree operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;

use palloc::PHeap;
use pmem_sim::{DurabilityDomain, Machine, MachineConfig, MediaKind, PAddr, PoolId};
use ptm::orec::OrecTable;
use ptm::umap::U64Map;
use ptm::{Algo, Ptm, PtmConfig, TxThread};

fn bench_orecs(c: &mut Criterion) {
    let table = OrecTable::new(1 << 18);
    let addr = PAddr::new(PoolId(1), 12345);
    c.bench_function("orec/index_of", |b| {
        b.iter(|| std::hint::black_box(table.index_of(std::hint::black_box(addr))))
    });
    c.bench_function("orec/lock_release", |b| {
        let idx = table.index_of(addr);
        b.iter(|| {
            table.try_lock(idx, 0, 1).unwrap();
            table.release(idx, 0);
        })
    });
}

fn bench_umap(c: &mut Criterion) {
    c.bench_function("umap/insert_get_clear_x64", |b| {
        let mut m = U64Map::new(128);
        b.iter(|| {
            for k in 0..64u64 {
                m.insert(k * 31 + 1, k);
            }
            for k in 0..64u64 {
                std::hint::black_box(m.get(k * 31 + 1));
            }
            m.clear();
        })
    });
}

fn machine(domain: DurabilityDomain) -> Arc<Machine> {
    Machine::new(MachineConfig {
        domain,
        track_persistence: false,
        window_ns: u64::MAX,
        ..MachineConfig::default()
    })
}

fn bench_session(c: &mut Criterion) {
    let m = machine(DurabilityDomain::Adr);
    let p = m.alloc_pool("b", 1 << 16, MediaKind::Optane);
    let mut s = m.session(0);
    let mut i = 0u64;
    c.bench_function("session/store_clwb_sfence", |b| {
        b.iter(|| {
            let a = p.addr((i * 8) % (1 << 15));
            s.store(a, i);
            s.clwb(a);
            s.sfence();
            i += 1;
        })
    });
    let mut j = 0u64;
    c.bench_function("session/load_hit", |b| {
        b.iter(|| {
            std::hint::black_box(s.load(p.addr(j % 64)));
            j += 1;
        })
    });
}

fn bench_txn(c: &mut Criterion) {
    for (name, algo) in [("redo", Algo::RedoLazy), ("undo", Algo::UndoEager)] {
        let m = machine(DurabilityDomain::Adr);
        let heap = PHeap::format(&m, "heap", 1 << 18, 8);
        let cfg = PtmConfig {
            algo,
            ..PtmConfig::default()
        };
        let ptm = Ptm::new(cfg);
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let block = heap.alloc(th.session_mut(), 64);
        let mut k = 0u64;
        c.bench_function(&format!("txn/{name}_8w_tx"), |b| {
            b.iter(|| {
                th.run(|tx| {
                    for w in 0..8u64 {
                        let v = tx.read_at(block, (k + w) % 64)?;
                        tx.write_at(block, (k + w) % 64, v + 1)?;
                    }
                    Ok(())
                });
                k += 1;
            })
        });
    }
}

fn bench_structs(c: &mut Criterion) {
    let m = machine(DurabilityDomain::Eadr);
    let heap = PHeap::format(&m, "heap", 1 << 22, 8);
    let ptm = Ptm::new(PtmConfig::redo());
    let mut th = TxThread::new(ptm, heap, m.session(0));
    let map = th.run(|tx| pstructs::PHashMap::create(tx, 1 << 14));
    let sl = th.run(pstructs::PSkipList::create);
    for k in 0..8_192u64 {
        th.run(|tx| map.insert(tx, k, k).map(|_| ()));
        th.run(|tx| sl.insert(tx, k, k).map(|_| ()));
    }
    let mut q = 0u64;
    c.bench_function("hashmap/get", |b| {
        b.iter(|| {
            q += 1;
            th.run(|tx| map.get(tx, q % 8_192))
        })
    });
    let mut r = 0u64;
    c.bench_function("skiplist/get", |b| {
        b.iter(|| {
            r += 1;
            th.run(|tx| sl.get(tx, r % 8_192))
        })
    });
    let mut w = 0u64;
    c.bench_function("skiplist/insert", |b| {
        b.iter(|| {
            // Overwrite within the existing key set so iterations do not
            // grow the heap unboundedly.
            w = (w + 7) % 8_192;
            th.run(|tx| sl.insert(tx, w, w).map(|_| ()))
        })
    });
}

fn bench_bptree(c: &mut Criterion) {
    let m = machine(DurabilityDomain::Eadr);
    let heap = PHeap::format(&m, "heap", 1 << 22, 8);
    let ptm = Ptm::new(PtmConfig::redo());
    let mut th = TxThread::new(ptm, heap, m.session(0));
    let tree = th.run(pstructs::BpTree::create);
    for kk in 0..10_000u64 {
        th.run(|tx| tree.insert(tx, kk * 7 % 65_536, kk).map(|_| ()));
    }
    let mut k = 0u64;
    c.bench_function("bptree/insert", |b| {
        b.iter_batched(
            || {
                k += 1;
                k * 7 % 65_536
            },
            |key| th.run(|tx| tree.insert(tx, key, key).map(|_| ())),
            BatchSize::SmallInput,
        )
    });
    let mut q = 0u64;
    c.bench_function("bptree/get", |b| {
        b.iter(|| {
            q += 1;
            th.run(|tx| tree.get(tx, q * 7 % 65_536))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_orecs, bench_umap, bench_session, bench_txn, bench_bptree, bench_structs
}
criterion_main!(benches);
