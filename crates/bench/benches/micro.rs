//! Wall-time microbenchmarks of the runtime's hot paths (real wall time,
//! not virtual time): orec operations, the transaction-local map, session
//! access costs, single transactions end to end, and B+Tree operations.
//!
//! Self-contained harness (`harness = false`): criterion is unavailable
//! offline. Each benchmark runs a short warmup, then timed batches, and
//! reports the median per-iteration time. Run with
//! `cargo bench -p bench` or `cargo bench -p bench -- <filter>`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use palloc::PHeap;
use pmem_sim::{DurabilityDomain, Machine, MachineConfig, MediaKind, PAddr, PoolId};
use ptm::orec::OrecTable;
use ptm::umap::U64Map;
use ptm::{Algo, Ptm, PtmConfig, TxThread};

/// Median ns/iter over several timed batches, after a warmup.
fn bench(name: &str, filter: &Option<String>, mut f: impl FnMut()) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    // Warmup, and calibrate a batch size targeting ~2 ms per batch.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < Duration::from_millis(100) {
        f();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);
    let batch = (2_000_000 / per_iter.max(1)).clamp(1, 1_000_000);
    let mut samples: Vec<u64> = Vec::with_capacity(15);
    for _ in 0..15 {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t0.elapsed().as_nanos() as u64 / batch);
    }
    samples.sort_unstable();
    println!(
        "{name:<28} {:>10} ns/iter (batch {batch})",
        samples[samples.len() / 2]
    );
}

fn machine(domain: DurabilityDomain) -> Arc<Machine> {
    Machine::new(MachineConfig {
        domain,
        track_persistence: false,
        window_ns: u64::MAX,
        ..MachineConfig::default()
    })
}

fn bench_orecs(filter: &Option<String>) {
    let table = OrecTable::new(1 << 18);
    let addr = PAddr::new(PoolId(1), 12345);
    bench("orec/index_of", filter, || {
        std::hint::black_box(table.index_of(std::hint::black_box(addr)));
    });
    let idx = table.index_of(addr);
    bench("orec/lock_release", filter, || {
        table.try_lock(idx, 0, 1).unwrap();
        table.release(idx, 0);
    });
}

fn bench_umap(filter: &Option<String>) {
    let mut m = U64Map::new(128);
    bench("umap/insert_get_clear_x64", filter, || {
        for k in 0..64u64 {
            m.insert(k * 31 + 1, k);
        }
        for k in 0..64u64 {
            std::hint::black_box(m.get(k * 31 + 1));
        }
        m.clear();
    });
}

fn bench_session(filter: &Option<String>) {
    let m = machine(DurabilityDomain::Adr);
    let p = m.alloc_pool("b", 1 << 16, MediaKind::Optane);
    let mut s = m.session(0);
    let mut i = 0u64;
    bench("session/store_clwb_sfence", filter, || {
        let a = p.addr((i * 8) % (1 << 15));
        s.store(a, i);
        s.clwb(a);
        s.sfence();
        i += 1;
    });
    let mut j = 0u64;
    bench("session/load_hit", filter, || {
        std::hint::black_box(s.load(p.addr(j % 64)));
        j += 1;
    });
}

fn bench_txn(filter: &Option<String>) {
    for (name, algo) in [("redo", Algo::RedoLazy), ("undo", Algo::UndoEager)] {
        let m = machine(DurabilityDomain::Adr);
        let heap = PHeap::format(&m, "heap", 1 << 18, 8);
        let cfg = PtmConfig {
            algo,
            ..PtmConfig::default()
        };
        let ptm = Ptm::new(cfg);
        let mut th = TxThread::new(ptm, heap.clone(), m.session(0));
        let block = heap.alloc(th.session_mut(), 64);
        let mut k = 0u64;
        bench(&format!("txn/{name}_8w_tx"), filter, || {
            th.run(|tx| {
                for w in 0..8u64 {
                    let v = tx.read_at(block, (k + w) % 64)?;
                    tx.write_at(block, (k + w) % 64, v + 1)?;
                }
                Ok(())
            });
            k += 1;
        });
    }
}

fn bench_structs(filter: &Option<String>) {
    let m = machine(DurabilityDomain::Eadr);
    let heap = PHeap::format(&m, "heap", 1 << 22, 8);
    let ptm = Ptm::new(PtmConfig::redo());
    let mut th = TxThread::new(ptm, heap, m.session(0));
    let map = th.run(|tx| pstructs::PHashMap::create(tx, 1 << 14));
    let sl = th.run(pstructs::PSkipList::create);
    for k in 0..8_192u64 {
        th.run(|tx| map.insert(tx, k, k).map(|_| ()));
        th.run(|tx| sl.insert(tx, k, k).map(|_| ()));
    }
    let mut q = 0u64;
    bench("hashmap/get", filter, || {
        q += 1;
        th.run(|tx| map.get(tx, q % 8_192));
    });
    let mut r = 0u64;
    bench("skiplist/get", filter, || {
        r += 1;
        th.run(|tx| sl.get(tx, r % 8_192));
    });
    let mut w = 0u64;
    bench("skiplist/insert", filter, || {
        // Overwrite within the existing key set so iterations do not
        // grow the heap unboundedly.
        w = (w + 7) % 8_192;
        th.run(|tx| sl.insert(tx, w, w).map(|_| ()));
    });
}

fn bench_bptree(filter: &Option<String>) {
    let m = machine(DurabilityDomain::Eadr);
    let heap = PHeap::format(&m, "heap", 1 << 22, 8);
    let ptm = Ptm::new(PtmConfig::redo());
    let mut th = TxThread::new(ptm, heap, m.session(0));
    let tree = th.run(pstructs::BpTree::create);
    for kk in 0..10_000u64 {
        th.run(|tx| tree.insert(tx, kk * 7 % 65_536, kk).map(|_| ()));
    }
    let mut k = 0u64;
    bench("bptree/insert", filter, || {
        k += 1;
        let key = k * 7 % 65_536;
        th.run(|tx| tree.insert(tx, key, key).map(|_| ()));
    });
    let mut q = 0u64;
    bench("bptree/get", filter, || {
        q += 1;
        th.run(|tx| tree.get(tx, q * 7 % 65_536));
    });
}

fn main() {
    // `cargo bench -- <filter>` narrows to benchmarks whose name contains
    // the filter; `--bench` is passed through by cargo and ignored.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
    bench_orecs(&filter);
    bench_umap(&filter);
    bench_session(&filter);
    bench_txn(&filter);
    bench_bptree(&filter);
    bench_structs(&filter);
}
