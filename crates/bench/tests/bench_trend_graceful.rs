//! Regression test: `bench_trend` degrades gracefully on truncated /
//! partially written archive lines (warn + exit 0) instead of aborting
//! the whole diff.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bench-trend-graceful-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

const GOOD_PR9: &str = concat!(
    r#"{"workload":"tpcc-hash","scenario":"Optane_ADR","threads":4,"throughput_mops":1.2000,"latency":{"p99":900}}"#,
    "\n",
    r#"{"workload":"kv-zipf","scenario":"Optane_ADR_sharded","shards":8,"threads_per_shard":1,"throughput_mops":6.0000,"sojourn":{"p99":5000}}"#,
    "\n",
);

#[test]
fn truncated_archive_lines_warn_but_do_not_abort() {
    let dir = scratch_dir("truncated");
    fs::write(dir.join("BENCH_PR9.json"), GOOD_PR9).unwrap();
    // PR 10's archive was killed mid-append: one complete line, one cut
    // mid-value. The complete line must still diff against PR 9.
    let pr10 = concat!(
        r#"{"workload":"tpcc-hash","scenario":"Optane_ADR","threads":4,"throughput_mops":1.2500,"latency":{"p99":900}}"#,
        "\n",
        r#"{"workload":"kv-zipf","scenario":"Optane_ADR_sharded","shards":8,"threads_per_shard":1,"throughput_mo"#,
    );
    fs::write(dir.join("BENCH_PR10.json"), pr10).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_bench_trend"))
        .args(["--dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}\nstdout: {stdout}\nstderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains("truncated line(s)"),
        "missing truncation warning on stderr: {stderr}"
    );
    assert!(
        stdout.contains("1 common points"),
        "the surviving point should still diff: {stdout}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn zero_point_archive_is_ignored_not_fatal() {
    let dir = scratch_dir("zero-point");
    fs::write(dir.join("BENCH_PR8.json"), GOOD_PR9).unwrap();
    fs::write(dir.join("BENCH_PR9.json"), GOOD_PR9).unwrap();
    // Every line of PR 10's archive is garbage / truncated.
    fs::write(
        dir.join("BENCH_PR10.json"),
        "{\"workload\":\"x\",\"scenar\nnot json at all\n",
    )
    .unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_bench_trend"))
        .args(["--dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}\nstderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains("archive ignored"),
        "missing zero-point warning on stderr: {stderr}"
    );
    let _ = fs::remove_dir_all(&dir);
}
