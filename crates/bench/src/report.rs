//! Structured JSON reports for experiment points.
//!
//! Every figure/table binary can emit one JSON object per measurement
//! point (JSON Lines) instead of CSV, via `--json`. The writer is
//! hand-rolled: the build environment has no crates-io access, and the
//! schema is small and flat. See README.md for the schema.

use ptm::Phase;
use workloads::driver::RunResult;

/// The report schema version stamped on every JSONL line (shared with
/// the `obs` exports — see `obs::export::SCHEMA_VERSION`). Version 2
/// introduced the stamp itself; unversioned lines are the PR 1-8
/// archives (version 1).
pub use obs::export::SCHEMA_VERSION;

/// Append a JSON-escaped string literal (with quotes).
fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_kv_u64(out: &mut String, key: &str, v: u64, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    push_str_lit(out, key);
    out.push(':');
    out.push_str(&v.to_string());
}

fn push_kv_f64(out: &mut String, key: &str, v: f64, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    push_str_lit(out, key);
    out.push(':');
    if v.is_finite() {
        out.push_str(&format!("{v:.6}"));
    } else {
        out.push_str("null"); // JSON has no Infinity/NaN
    }
}

/// One measurement point as a single-line JSON object.
///
/// Schema (all times in virtual ns):
/// `{workload, scenario, threads, ops, elapsed_virtual_ns,
///   throughput_mops, phase_ns: {<phase label>: ns, ...},
///   persistence_share,
///   latency: {count, mean_ns, p50, p90, p95, p99, p999, max,
///             buckets: [[lower_bound_ns, count], ...]},
///   ptm: {commits, aborts, ...}, mem: {loads, stores, ...}}`
pub fn point_json(workload: &str, r: &RunResult) -> String {
    let mut out = String::with_capacity(1024);
    let mut first = true;
    out.push('{');
    out.push_str(&format!("\"schema_version\":{SCHEMA_VERSION},"));

    if !first {
        out.push(',');
    }
    first = false;
    push_str_lit(&mut out, "workload");
    out.push(':');
    push_str_lit(&mut out, workload);
    out.push(',');
    push_str_lit(&mut out, "scenario");
    out.push(':');
    push_str_lit(&mut out, &r.label);

    push_kv_u64(&mut out, "threads", r.threads as u64, &mut first);
    push_kv_u64(&mut out, "ops", r.ops, &mut first);
    push_kv_u64(
        &mut out,
        "elapsed_virtual_ns",
        r.elapsed_virtual_ns,
        &mut first,
    );
    push_kv_f64(&mut out, "throughput_mops", r.throughput_mops(), &mut first);

    // Phase breakdown.
    out.push(',');
    push_str_lit(&mut out, "phase_ns");
    out.push_str(":{");
    let mut pf = true;
    for p in Phase::ALL {
        push_kv_u64(&mut out, p.label(), r.phases.get(p), &mut pf);
    }
    out.push('}');
    push_kv_f64(
        &mut out,
        "persistence_share",
        r.phases.persistence_share(),
        &mut first,
    );

    // Latency digest + sparse histogram.
    let s = r.latency.summary();
    out.push(',');
    push_str_lit(&mut out, "latency");
    out.push_str(":{");
    let mut lf = true;
    push_kv_u64(&mut out, "count", s.count, &mut lf);
    push_kv_f64(&mut out, "mean_ns", s.mean_ns, &mut lf);
    push_kv_u64(&mut out, "p50", s.p50, &mut lf);
    push_kv_u64(&mut out, "p90", s.p90, &mut lf);
    push_kv_u64(&mut out, "p95", s.p95, &mut lf);
    push_kv_u64(&mut out, "p99", s.p99, &mut lf);
    push_kv_u64(&mut out, "p999", s.p999, &mut lf);
    push_kv_u64(&mut out, "max", s.max, &mut lf);
    out.push(',');
    push_str_lit(&mut out, "buckets");
    out.push_str(":[");
    for (i, (lb, c)) in r.latency.nonzero_buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{lb},{c}]"));
    }
    out.push_str("]}");

    // Transaction counters.
    out.push(',');
    push_str_lit(&mut out, "ptm");
    out.push_str(":{");
    let mut tf = true;
    push_kv_u64(&mut out, "commits", r.ptm.commits, &mut tf);
    push_kv_u64(&mut out, "aborts", r.ptm.aborts, &mut tf);
    push_kv_u64(
        &mut out,
        "aborts_read_locked",
        r.ptm.aborts_read_locked,
        &mut tf,
    );
    push_kv_u64(
        &mut out,
        "aborts_read_version",
        r.ptm.aborts_read_version,
        &mut tf,
    );
    push_kv_u64(&mut out, "aborts_acquire", r.ptm.aborts_acquire, &mut tf);
    push_kv_u64(
        &mut out,
        "aborts_validation",
        r.ptm.aborts_validation,
        &mut tf,
    );
    push_kv_u64(&mut out, "extensions", r.ptm.extensions, &mut tf);
    push_kv_u64(&mut out, "htm_commits", r.ptm.htm_commits, &mut tf);
    push_kv_u64(
        &mut out,
        "htm_logged_commits",
        r.ptm.htm_logged_commits,
        &mut tf,
    );
    push_kv_u64(&mut out, "htm_aborts", r.ptm.htm_aborts, &mut tf);
    push_kv_u64(
        &mut out,
        "htm_capacity_aborts",
        r.ptm.htm_capacity_aborts,
        &mut tf,
    );
    push_kv_u64(
        &mut out,
        "htm_conflict_aborts",
        r.ptm.htm_conflict_aborts,
        &mut tf,
    );
    push_kv_u64(
        &mut out,
        "htm_explicit_aborts",
        r.ptm.htm_explicit_aborts,
        &mut tf,
    );
    push_kv_u64(&mut out, "htm_fallbacks", r.ptm.htm_fallbacks, &mut tf);
    // Contention-pacing and 2PC counters are emitted only when nonzero:
    // runs that never pace or cross shards keep the exact PR 1-9 line
    // (the phase_profile byte-identity baseline depends on this).
    if r.ptm.htm_fallback_fastpathed > 0 {
        push_kv_u64(
            &mut out,
            "htm_fallback_fastpathed",
            r.ptm.htm_fallback_fastpathed,
            &mut tf,
        );
    }
    if r.ptm.prepares > 0 || r.ptm.coordinator_commits > 0 {
        push_kv_u64(&mut out, "prepares", r.ptm.prepares, &mut tf);
        push_kv_u64(
            &mut out,
            "coordinator_commits",
            r.ptm.coordinator_commits,
            &mut tf,
        );
        push_kv_u64(
            &mut out,
            "prepare_fence_ns",
            r.ptm.prepare_fence_ns,
            &mut tf,
        );
    }
    if r.ptm.indoubt_resolved_commit > 0 || r.ptm.indoubt_resolved_abort > 0 {
        push_kv_u64(
            &mut out,
            "indoubt_resolved_commit",
            r.ptm.indoubt_resolved_commit,
            &mut tf,
        );
        push_kv_u64(
            &mut out,
            "indoubt_resolved_abort",
            r.ptm.indoubt_resolved_abort,
            &mut tf,
        );
    }
    push_kv_u64(
        &mut out,
        "backend_log_bytes",
        r.ptm.backend_log_bytes,
        &mut tf,
    );
    push_kv_u64(
        &mut out,
        "max_write_entries",
        r.ptm.max_write_entries,
        &mut tf,
    );
    push_kv_u64(&mut out, "flushes_elided", r.ptm.flushes_elided, &mut tf);
    push_kv_u64(&mut out, "lines_planned", r.ptm.lines_planned, &mut tf);
    push_kv_u64(
        &mut out,
        "max_read_set_unique",
        r.ptm.max_read_set_unique,
        &mut tf,
    );
    push_kv_u64(&mut out, "max_write_lines", r.ptm.max_write_lines, &mut tf);
    push_kv_u64(
        &mut out,
        "shadow_lines_allocated",
        r.ptm.shadow_lines_allocated,
        &mut tf,
    );
    push_kv_u64(
        &mut out,
        "shadow_lines_reclaimed",
        r.ptm.shadow_lines_reclaimed,
        &mut tf,
    );
    push_kv_u64(&mut out, "publish_fences", r.ptm.publish_fences, &mut tf);
    push_kv_u64(
        &mut out,
        "group_commit_windows",
        r.ptm.group_commit_windows,
        &mut tf,
    );
    push_kv_u64(&mut out, "sfences_elided", r.ptm.sfences_elided, &mut tf);
    push_kv_u64(&mut out, "max_backoff_ns", r.ptm.max_backoff_ns, &mut tf);
    out.push('}');

    // Memory-system counters.
    out.push(',');
    push_str_lit(&mut out, "mem");
    out.push_str(":{");
    let mut mf = true;
    push_kv_u64(&mut out, "loads", r.mem.loads, &mut mf);
    push_kv_u64(&mut out, "stores", r.mem.stores, &mut mf);
    push_kv_u64(&mut out, "l3_hits", r.mem.l3_hits, &mut mf);
    push_kv_u64(&mut out, "l3_misses", r.mem.l3_misses, &mut mf);
    push_kv_u64(&mut out, "clwbs", r.mem.clwbs, &mut mf);
    push_kv_u64(&mut out, "clwb_writebacks", r.mem.clwb_writebacks, &mut mf);
    push_kv_u64(&mut out, "clwb_batches", r.mem.clwb_batches, &mut mf);
    push_kv_u64(&mut out, "sfences", r.mem.sfences, &mut mf);
    push_kv_u64(&mut out, "evictions", r.mem.evictions, &mut mf);
    push_kv_u64(
        &mut out,
        "optane_lines_written",
        r.mem.optane_lines_written,
        &mut mf,
    );
    push_kv_u64(
        &mut out,
        "dram_lines_written",
        r.mem.dram_lines_written,
        &mut mf,
    );
    push_kv_u64(&mut out, "wpq_stall_ns", r.mem.wpq_stall_ns, &mut mf);
    push_kv_u64(
        &mut out,
        "dram_write_stall_ns",
        r.mem.dram_write_stall_ns,
        &mut mf,
    );
    push_kv_u64(&mut out, "fence_wait_ns", r.mem.fence_wait_ns, &mut mf);
    out.push('}');

    out.push('}');
    out
}

/// One sharded measurement point as a single-line JSON object.
///
/// Extends the flat schema with the shard geometry, the group-commit
/// counters, sojourn latency (arrival → completion, the open-loop
/// front-end's client-visible metric) and a `per_shard` array carrying
/// each shard's WPQ-stall attribution.
pub fn sharded_point_json(workload: &str, r: &workloads::ShardedRunResult) -> String {
    let mut out = String::with_capacity(1024);
    let mut first = false;
    out.push('{');
    out.push_str(&format!("\"schema_version\":{SCHEMA_VERSION},"));
    push_str_lit(&mut out, "workload");
    out.push(':');
    push_str_lit(&mut out, workload);
    out.push(',');
    push_str_lit(&mut out, "scenario");
    out.push(':');
    push_str_lit(&mut out, &r.label);
    push_kv_u64(&mut out, "shards", r.shards as u64, &mut first);
    push_kv_u64(
        &mut out,
        "threads_per_shard",
        r.threads_per_shard as u64,
        &mut first,
    );
    push_kv_u64(&mut out, "ops", r.ops, &mut first);
    push_kv_u64(
        &mut out,
        "elapsed_virtual_ns",
        r.elapsed_virtual_ns,
        &mut first,
    );
    push_kv_f64(&mut out, "throughput_mops", r.throughput_mops(), &mut first);
    push_kv_f64(
        &mut out,
        "sfences_per_commit",
        r.sfences_per_commit(),
        &mut first,
    );

    let s = r.sojourn.summary();
    out.push(',');
    push_str_lit(&mut out, "sojourn");
    out.push_str(":{");
    let mut lf = true;
    push_kv_u64(&mut out, "count", s.count, &mut lf);
    push_kv_f64(&mut out, "mean_ns", s.mean_ns, &mut lf);
    push_kv_u64(&mut out, "p50", s.p50, &mut lf);
    push_kv_u64(&mut out, "p99", s.p99, &mut lf);
    push_kv_u64(&mut out, "p999", s.p999, &mut lf);
    push_kv_u64(&mut out, "max", s.max, &mut lf);
    out.push('}');

    out.push(',');
    push_str_lit(&mut out, "ptm");
    out.push_str(":{");
    let mut tf = true;
    push_kv_u64(&mut out, "commits", r.ptm.commits, &mut tf);
    push_kv_u64(&mut out, "aborts", r.ptm.aborts, &mut tf);
    push_kv_u64(
        &mut out,
        "group_commit_windows",
        r.ptm.group_commit_windows,
        &mut tf,
    );
    push_kv_u64(&mut out, "sfences_elided", r.ptm.sfences_elided, &mut tf);
    push_kv_u64(&mut out, "max_backoff_ns", r.ptm.max_backoff_ns, &mut tf);
    out.push('}');

    // 2PC counters, emitted only when the run actually crossed shards
    // (single-shard sweeps keep the exact PR 1-9 line).
    if r.ptm.prepares > 0 || r.ptm.coordinator_commits > 0 {
        out.push(',');
        push_str_lit(&mut out, "twopc");
        out.push_str(":{");
        let mut xf = true;
        push_kv_u64(&mut out, "prepares", r.ptm.prepares, &mut xf);
        push_kv_u64(
            &mut out,
            "coordinator_commits",
            r.ptm.coordinator_commits,
            &mut xf,
        );
        push_kv_u64(
            &mut out,
            "prepare_fence_ns",
            r.ptm.prepare_fence_ns,
            &mut xf,
        );
        push_kv_u64(
            &mut out,
            "indoubt_resolved_commit",
            r.ptm.indoubt_resolved_commit,
            &mut xf,
        );
        push_kv_u64(
            &mut out,
            "indoubt_resolved_abort",
            r.ptm.indoubt_resolved_abort,
            &mut xf,
        );
        out.push('}');
    }

    out.push(',');
    push_str_lit(&mut out, "mem");
    out.push_str(":{");
    let mut mf = true;
    push_kv_u64(&mut out, "sfences", r.mem.sfences, &mut mf);
    push_kv_u64(&mut out, "wpq_stall_ns", r.mem.wpq_stall_ns, &mut mf);
    push_kv_u64(
        &mut out,
        "dram_write_stall_ns",
        r.mem.dram_write_stall_ns,
        &mut mf,
    );
    push_kv_u64(&mut out, "fence_wait_ns", r.mem.fence_wait_ns, &mut mf);
    out.push('}');

    out.push(',');
    push_str_lit(&mut out, "per_shard");
    out.push_str(":[");
    for (i, m) in r.per_shard_mem.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        let mut sf = true;
        push_kv_u64(&mut out, "shard", i as u64, &mut sf);
        push_kv_u64(&mut out, "sfences", m.sfences, &mut sf);
        push_kv_u64(&mut out, "wpq_stall_ns", m.wpq_stall_ns, &mut sf);
        push_kv_u64(&mut out, "fence_wait_ns", m.fence_wait_ns, &mut sf);
        out.push('}');
    }
    out.push(']');

    out.push('}');
    out
}

/// One restart measurement point as a single-line JSON object.
///
/// Emitted by `recovery_bench`: restart latency decomposed into log
/// repair and GC phases for a pool of `pool_words` words carrying
/// `dirty_entries` committed-but-unretired log entries, recovered with
/// `workers` threads. Times are wall-clock ns (restart is a host-side
/// operation — there is no virtual clock yet when it runs).
///
/// Schema:
/// `{workload, scenario, pool_words, dirty_entries, workers,
///   recovery: {logs_scanned, redo_replayed, redo_entries,
///              undo_rolled_back, torn_entries, malformed_logs,
///              recovery_ns, recovery_workers},
///   gc: {blocks_scanned, live_blocks, reclaimed_blocks, leaked_blocks,
///        corrupt_headers, gc_scan_ns, gc_mark_ns, gc_sweep_ns,
///        gc_workers},
///   time_to_first_txn_ns, full_restart_ns}`
pub fn restart_point_json(
    scenario: &str,
    pool_words: u64,
    dirty_entries: u64,
    workers: u64,
    r: &ptm::db::ReopenReports,
) -> String {
    let mut out = String::with_capacity(512);
    let mut first = false;
    out.push('{');
    out.push_str(&format!("\"schema_version\":{SCHEMA_VERSION},"));
    push_str_lit(&mut out, "workload");
    out.push(':');
    push_str_lit(&mut out, "restart");
    out.push(',');
    push_str_lit(&mut out, "scenario");
    out.push(':');
    push_str_lit(&mut out, scenario);
    push_kv_u64(&mut out, "pool_words", pool_words, &mut first);
    push_kv_u64(&mut out, "dirty_entries", dirty_entries, &mut first);
    push_kv_u64(&mut out, "workers", workers, &mut first);

    out.push(',');
    push_str_lit(&mut out, "recovery");
    out.push_str(":{");
    let mut rf = true;
    push_kv_u64(
        &mut out,
        "logs_scanned",
        r.recovery.logs_scanned as u64,
        &mut rf,
    );
    push_kv_u64(
        &mut out,
        "redo_replayed",
        r.recovery.redo_replayed as u64,
        &mut rf,
    );
    push_kv_u64(
        &mut out,
        "redo_entries",
        r.recovery.redo_entries as u64,
        &mut rf,
    );
    push_kv_u64(
        &mut out,
        "undo_rolled_back",
        r.recovery.undo_rolled_back as u64,
        &mut rf,
    );
    push_kv_u64(
        &mut out,
        "torn_entries",
        r.recovery.torn_entries as u64,
        &mut rf,
    );
    push_kv_u64(
        &mut out,
        "malformed_logs",
        r.recovery.malformed.len() as u64,
        &mut rf,
    );
    push_kv_u64(&mut out, "recovery_ns", r.recovery.recovery_ns, &mut rf);
    push_kv_u64(
        &mut out,
        "recovery_workers",
        r.recovery.recovery_workers as u64,
        &mut rf,
    );
    out.push('}');

    out.push(',');
    push_str_lit(&mut out, "gc");
    out.push_str(":{");
    let mut gf = true;
    push_kv_u64(
        &mut out,
        "blocks_scanned",
        r.gc.blocks_scanned as u64,
        &mut gf,
    );
    push_kv_u64(&mut out, "live_blocks", r.gc.live_blocks as u64, &mut gf);
    push_kv_u64(
        &mut out,
        "reclaimed_blocks",
        r.gc.reclaimed_blocks as u64,
        &mut gf,
    );
    push_kv_u64(
        &mut out,
        "leaked_blocks",
        r.gc.leaked_blocks as u64,
        &mut gf,
    );
    push_kv_u64(
        &mut out,
        "corrupt_headers",
        r.gc.corrupt_headers as u64,
        &mut gf,
    );
    push_kv_u64(&mut out, "gc_scan_ns", r.gc.gc_scan_ns, &mut gf);
    push_kv_u64(&mut out, "gc_mark_ns", r.gc.gc_mark_ns, &mut gf);
    push_kv_u64(&mut out, "gc_sweep_ns", r.gc.gc_sweep_ns, &mut gf);
    push_kv_u64(&mut out, "gc_workers", r.gc.gc_workers as u64, &mut gf);
    out.push('}');

    push_kv_u64(
        &mut out,
        "time_to_first_txn_ns",
        r.time_to_first_txn_ns,
        &mut first,
    );
    push_kv_u64(&mut out, "full_restart_ns", r.full_restart_ns, &mut first);

    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> RunResult {
        use pmem_sim::{DurabilityDomain, MediaKind};
        use workloads::driver::{run_scenario, RunConfig, Scenario, Workload};

        struct Noop(std::sync::Mutex<Option<pmem_sim::PAddr>>);
        impl Workload for Noop {
            fn name(&self) -> String {
                "noop".into()
            }
            fn heap_words(&self) -> usize {
                1 << 10
            }
            fn setup(&mut self, th: &mut ptm::TxThread) {
                let heap = std::sync::Arc::clone(th.heap());
                let a = heap.alloc(th.session_mut(), 1);
                th.run(|tx| tx.write(a, 0));
                *self.0.lock().unwrap() = Some(a);
            }
            fn op(
                &self,
                th: &mut ptm::TxThread,
                _rng: &mut rand::rngs::SmallRng,
                _tid: usize,
                _i: u64,
            ) {
                let a = self.0.lock().unwrap().unwrap();
                th.run(|tx| {
                    let v = tx.read(a)?;
                    tx.write(a, v + 1)
                });
            }
        }
        let mut w = Noop(std::sync::Mutex::new(None));
        let sc = Scenario::new(
            "json \"test\"",
            MediaKind::Optane,
            DurabilityDomain::Adr,
            ptm::Algo::RedoLazy,
        );
        let rc = RunConfig {
            threads: 1,
            ops_per_thread: 30,
            ..RunConfig::default()
        };
        run_scenario(&mut w, &sc, &rc)
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let r = sample_result();
        let j = point_json("noop", &r);
        // Structural sanity without a JSON parser: balanced delimiters,
        // escaped quotes in the scenario label, the expected keys.
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(
            j.starts_with("{\"schema_version\":2,"),
            "schema_version must lead every line: {j}"
        );
        let depth_ok = {
            let mut depth = 0i64;
            let mut in_str = false;
            let mut escape = false;
            for c in j.chars() {
                if escape {
                    escape = false;
                    continue;
                }
                match c {
                    '\\' if in_str => escape = true,
                    '"' => in_str = !in_str,
                    '{' | '[' if !in_str => depth += 1,
                    '}' | ']' if !in_str => depth -= 1,
                    _ => {}
                }
            }
            depth == 0 && !in_str
        };
        assert!(depth_ok, "unbalanced JSON: {j}");
        assert!(j.contains("\"scenario\":\"json \\\"test\\\"\""));
        for key in [
            "\"phase_ns\"",
            "\"speculation\"",
            "\"fence_wait\"",
            "\"latency\"",
            "\"buckets\"",
            "\"persistence_share\"",
            "\"ptm\"",
            "\"mem\"",
            "\"throughput_mops\"",
            "\"flushes_elided\"",
            "\"lines_planned\"",
            "\"max_read_set_unique\"",
            "\"max_write_lines\"",
            "\"shadow_lines_allocated\"",
            "\"shadow_lines_reclaimed\"",
            "\"publish_fences\"",
            "\"clwb_batches\"",
            // Per-cause abort attribution and the hybrid-HTM counters:
            // trace_analyze cross-checks its trace-derived totals against
            // exactly these keys, so their presence is part of the schema.
            "\"aborts_read_locked\"",
            "\"aborts_read_version\"",
            "\"aborts_acquire\"",
            "\"aborts_validation\"",
            "\"htm_commits\"",
            "\"htm_logged_commits\"",
            "\"htm_aborts\"",
            "\"htm_capacity_aborts\"",
            "\"htm_conflict_aborts\"",
            "\"htm_explicit_aborts\"",
            "\"htm_fallbacks\"",
            "\"backend_log_bytes\"",
            "\"wpq_stall_ns\"",
            "\"dram_write_stall_ns\"",
            "\"fence_wait_ns\"",
            // Group-commit and backoff observability (PR 6): consumers
            // key on these to compute fences-per-commit reductions.
            "\"group_commit_windows\"",
            "\"sfences_elided\"",
            "\"max_backoff_ns\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // One line (JSONL-safe).
        assert!(!j.contains('\n'));
    }

    #[test]
    fn sharded_json_pins_per_shard_attribution() {
        use workloads::{ShardedRunConfig, StreamConfig};
        let rc = ShardedRunConfig {
            shards: 2,
            threads_per_shard: 2,
            stream: StreamConfig {
                total_ops: 120,
                keys: 256,
                ..StreamConfig::default()
            },
            ..ShardedRunConfig::default()
        };
        let r = workloads::run_sharded_kv(&rc);
        let j = sharded_point_json("sharded-kv", &r);
        assert!(j.starts_with("{\"schema_version\":2,"), "unversioned: {j}");
        for key in [
            "\"shards\"",
            "\"threads_per_shard\"",
            "\"throughput_mops\"",
            "\"sfences_per_commit\"",
            "\"sojourn\"",
            "\"p99\"",
            "\"group_commit_windows\"",
            "\"sfences_elided\"",
            "\"max_backoff_ns\"",
            "\"per_shard\"",
            "\"wpq_stall_ns\"",
            "\"dram_write_stall_ns\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // Exactly one per-shard entry per shard.
        assert_eq!(j.matches("\"shard\":").count(), 2);
        assert!(!j.contains('\n'));
    }

    /// The 2PC block is strictly opt-in: a run that never crosses shards
    /// (and never paces HTM fallbacks) emits the exact PR 1-9 keys —
    /// the phase_profile byte-identity baseline depends on this.
    #[test]
    fn twopc_keys_absent_when_run_never_crosses_shards() {
        let r = sample_result();
        let j = point_json("noop", &r);
        for key in [
            "\"prepares\"",
            "\"coordinator_commits\"",
            "\"prepare_fence_ns\"",
            "\"indoubt_resolved_commit\"",
            "\"htm_fallback_fastpathed\"",
        ] {
            assert!(!j.contains(key), "gated key {key} leaked into {j}");
        }
    }

    #[test]
    fn sharded_json_carries_twopc_block_for_cross_shard_runs() {
        use workloads::{ShardedRunConfig, StreamConfig};
        let rc = ShardedRunConfig {
            shards: 2,
            threads_per_shard: 1,
            stream: StreamConfig {
                total_ops: 200,
                keys: 256,
                ..StreamConfig::default()
            },
            ..ShardedRunConfig::default()
        };
        let r = workloads::run_cross_shard_transfer(&rc, 0.5);
        let j = sharded_point_json("xshard-transfer", &r);
        for key in [
            "\"twopc\"",
            "\"prepares\"",
            "\"coordinator_commits\"",
            "\"prepare_fence_ns\"",
            "\"indoubt_resolved_commit\"",
            "\"indoubt_resolved_abort\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // And the gate really gates: a frac=0 run has no 2PC block.
        let r0 = workloads::run_cross_shard_transfer(&rc, 0.0);
        let j0 = sharded_point_json("xshard-transfer", &r0);
        assert!(!j0.contains("\"twopc\""), "2PC block leaked into {j0}");
        assert!(!j0.contains('\n'));
    }

    #[test]
    fn restart_json_pins_restart_counter_schema() {
        use pmem_sim::{DurabilityDomain, MachineConfig};
        use ptm::db::PtmDb;
        use ptm::{PtmConfig, RecoverOptions};

        let cfg = MachineConfig::functional(DurabilityDomain::Adr);
        let db = PtmDb::create(cfg.clone(), PtmConfig::redo(), 1 << 12, 4);
        let mut th = db.thread(0);
        let heap = db.heap().clone();
        let a = heap.alloc(th.session_mut(), 2);
        th.run(|tx| tx.write(a, 9));
        heap.set_root(th.session_mut(), 0, a);
        drop(th);
        let image = db.crash(7);
        let (_db2, reports) = PtmDb::reopen_with(
            &image,
            cfg,
            PtmConfig::redo(),
            RecoverOptions {
                workers: 2,
                ..RecoverOptions::default()
            },
        );

        let j = restart_point_json("redo/adr", 1 << 12, 1, 2, &reports);
        assert!(j.starts_with("{\"schema_version\":2,"), "unversioned: {j}");
        // The restart counters are part of the published schema:
        // EXPERIMENTS.md tables and the ci.sh quick guard key on them.
        for key in [
            "\"pool_words\"",
            "\"dirty_entries\"",
            "\"workers\"",
            "\"recovery\"",
            "\"logs_scanned\"",
            "\"malformed_logs\"",
            "\"recovery_ns\"",
            "\"recovery_workers\"",
            "\"gc\"",
            "\"gc_scan_ns\"",
            "\"gc_mark_ns\"",
            "\"gc_sweep_ns\"",
            "\"gc_workers\"",
            "\"corrupt_headers\"",
            "\"time_to_first_txn_ns\"",
            "\"full_restart_ns\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // One discovered log clamps the recovery workers to 1 even when
        // two were requested; both facts are part of the point.
        assert!(j.contains("\"workers\":2"), "requested workers: {j}");
        assert!(j.contains("\"recovery_workers\":1"), "clamped workers: {j}");
        assert!(j.contains("\"gc_workers\":2"), "gc workers: {j}");
        assert!(!j.contains('\n'));
    }

    #[test]
    fn phase_ns_sums_to_positive_total_under_adr() {
        let r = sample_result();
        assert!(r.phases.total_ns() > 0);
        assert!(r.phases.get(Phase::FenceWait) > 0);
    }
}
