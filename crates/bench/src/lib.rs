//! # bench — the experiment harness
//!
//! One binary per table and figure of the paper (see `src/bin/`), plus
//! ablation binaries for the design decisions DESIGN.md calls out, plus
//! criterion microbenchmarks of the runtime's hot paths (`benches/`).
//!
//! All binaries print CSV to stdout and honor three flags:
//!
//! * `--quick` — a fast smoke-scale run (fewer threads, fewer ops);
//! * `--ops N` — override operations per thread;
//! * `--threads a,b,c` — override the thread sweep.
//!
//! Results are *virtual-time* throughput (see `pmem-sim`); absolute
//! values are not comparable to the paper's testbed, but curve shapes,
//! orderings and crossover points are.

pub mod report;
pub mod trace_out;

use workloads::driver::{run_scenario, RunConfig, RunResult, Scenario, Workload};
use workloads::{
    BTreeInsertOnly, BTreeMixed, IndexKind, KvStore, Tatp, Tpcc, Vacation, VacationCfg,
};

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    pub quick: bool,
    pub threads: Vec<usize>,
    pub ops_per_thread: u64,
    /// Emit one JSON object per point (JSON Lines) instead of CSV.
    pub json: bool,
    /// Record a flight-recorder trace of one designated point to this
    /// path (binary dump) and `<path>.json` (Chrome trace-event JSON).
    /// Which point is traced is up to the binary; see `phase_profile`.
    pub trace: Option<String>,
}

impl HarnessOpts {
    /// Parse `std::env::args`. Unknown flags are rejected loudly — a
    /// typo'd flag silently ignored would invalidate an experiment.
    pub fn from_args() -> HarnessOpts {
        let mut quick = false;
        let mut threads: Option<Vec<usize>> = None;
        let mut ops: Option<u64> = None;
        let mut json = false;
        let mut trace = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--json" => json = true,
                "--threads" => {
                    let v = args.next().expect("--threads needs a list like 1,2,4");
                    threads = Some(
                        v.split(',')
                            .map(|s| s.parse().expect("bad thread count"))
                            .collect(),
                    );
                }
                "--ops" => {
                    ops = Some(
                        args.next()
                            .expect("--ops needs a number")
                            .parse()
                            .expect("bad op count"),
                    );
                }
                "--trace" => {
                    trace = Some(args.next().expect("--trace needs a file path"));
                }
                other => {
                    panic!("unknown flag `{other}` (known: --quick --threads --ops --json --trace)")
                }
            }
        }
        let default_threads = if quick {
            vec![1, 2, 4]
        } else {
            workloads::PAPER_THREADS.to_vec()
        };
        let default_ops = if quick { 300 } else { 1_500 };
        HarnessOpts {
            quick,
            threads: threads.unwrap_or(default_threads),
            ops_per_thread: ops.unwrap_or(default_ops),
            json,
            trace,
        }
    }

    /// Base run configuration for a given thread count.
    pub fn run_config(&self, threads: usize) -> RunConfig {
        RunConfig {
            threads,
            ops_per_thread: self.ops_per_thread,
            ..RunConfig::default()
        }
    }

    /// Total operations a single run will execute (for workload sizing).
    pub fn total_ops(&self, threads: usize) -> u64 {
        threads as u64 * self.ops_per_thread
    }
}

/// The six panel workloads of Figures 3 and 6.
pub fn panel_workloads() -> Vec<&'static str> {
    vec![
        "btree-insert",
        "btree-mixed",
        "tpcc-btree",
        "tpcc-hash",
        "vacation-low",
        "vacation-high",
    ]
}

/// Instantiate a panel workload by name, sized for `total_ops`.
pub fn make_workload(name: &str, total_ops: u64, quick: bool) -> Box<dyn Workload> {
    let scale = if quick { 1 } else { 4 };
    match name {
        "btree-insert" => Box::new(BTreeInsertOnly::new(total_ops)),
        "btree-mixed" => Box::new(BTreeMixed::new(1 << (12 + scale))),
        "tpcc-btree" => Box::new(Tpcc::new(IndexKind::BTree, 8, total_ops)),
        "tpcc-hash" => Box::new(Tpcc::new(IndexKind::Hash, 8, total_ops)),
        "tpcc-skiplist" => Box::new(Tpcc::new(IndexKind::SkipList, 8, total_ops)),
        "vacation-low" => Box::new(Vacation::new(VacationCfg::low(256 << scale))),
        "vacation-high" => Box::new(Vacation::new(VacationCfg::high(256 << scale))),
        "tatp" => Box::new(Tatp::new(1024 << scale)),
        "kvstore" => Box::new(KvStore::new(64 << scale)),
        other => panic!("unknown workload `{other}`"),
    }
}

/// Run one (workload, scenario, threads) point with a fresh workload.
pub fn run_point(name: &str, sc: &Scenario, opts: &HarnessOpts, threads: usize) -> RunResult {
    let mut w = make_workload(name, opts.total_ops(threads), opts.quick);
    let rc = opts.run_config(threads);
    run_boxed(w.as_mut(), sc, &rc)
}

/// Like [`run_point`] but with a custom [`RunConfig`] (ablations).
pub fn run_point_with(name: &str, sc: &Scenario, rc: &RunConfig, quick: bool) -> RunResult {
    let total = rc.threads as u64 * rc.ops_per_thread;
    let mut w = make_workload(name, total, quick);
    run_boxed(w.as_mut(), sc, rc)
}

/// `run_scenario` over a `dyn Workload` (a tiny adapter: the driver is
/// generic, the harness is dynamic).
pub fn run_boxed(w: &mut dyn Workload, sc: &Scenario, rc: &RunConfig) -> RunResult {
    struct Dyn<'a>(&'a mut dyn Workload);
    impl Workload for Dyn<'_> {
        fn name(&self) -> String {
            self.0.name()
        }
        fn heap_words(&self) -> usize {
            self.0.heap_words()
        }
        fn setup(&mut self, th: &mut ptm::TxThread) {
            self.0.setup(th)
        }
        fn op(&self, th: &mut ptm::TxThread, rng: &mut rand::rngs::SmallRng, tid: usize, i: u64) {
            self.0.op(th, rng, tid, i)
        }
    }
    let mut d = Dyn(w);
    run_scenario(&mut d, sc, rc)
}

/// CSV header shared by the figure binaries.
pub fn print_throughput_header() {
    println!("workload,scenario,threads,throughput_mops,commits,aborts,commit_abort_ratio");
}

/// Emit one CSV row.
pub fn print_throughput_row(workload: &str, r: &RunResult) {
    println!(
        "{},{},{},{:.4},{},{},{:.2}",
        workload,
        r.label,
        r.threads,
        r.throughput_mops(),
        r.ptm.commits,
        r.ptm.aborts,
        r.commit_abort_ratio()
    );
}

/// Emit one point in the format the harness was asked for: a JSON line
/// under `--json`, a CSV row otherwise.
pub fn emit_point(opts: &HarnessOpts, workload: &str, r: &RunResult) {
    if opts.json {
        println!("{}", report::point_json(workload, r));
    } else {
        print_throughput_row(workload, r);
    }
}

/// Run a full figure: every scenario x thread count for each workload.
pub fn run_figure(workload_names: &[&str], scenarios: &[Scenario], opts: &HarnessOpts) {
    if !opts.json {
        print_throughput_header();
    }
    for name in workload_names {
        for sc in scenarios {
            for &threads in &opts.threads {
                let r = run_point(name, sc, opts, threads);
                emit_point(opts, name, &r);
            }
        }
    }
}

/// Tables I / II: commit-to-abort ratio of TPCC (Hash Table) across the
/// {DRAM, Optane} x {ADR, eADR} grid for one algorithm.
pub fn commit_abort_table(algo: ptm::Algo) {
    use pmem_sim::{DurabilityDomain, MediaKind};
    let opts = HarnessOpts::from_args();
    if !opts.json {
        print!("scenario");
        for t in &opts.threads {
            print!(",{t}");
        }
        println!();
    }
    for (media, mname) in [(MediaKind::Dram, "DRAM"), (MediaKind::Optane, "Optane")] {
        for (domain, dname) in [
            (DurabilityDomain::Adr, "ADR"),
            (DurabilityDomain::Eadr, "eADR"),
        ] {
            let sc = Scenario::new(format!("{mname}_{dname}"), media, domain, algo);
            if opts.json {
                for &threads in &opts.threads {
                    let r = run_point("tpcc-hash", &sc, &opts, threads);
                    println!("{}", report::point_json("tpcc-hash", &r));
                }
                continue;
            }
            print!("{}", sc.label);
            for &threads in &opts.threads {
                let r = run_point("tpcc-hash", &sc, &opts, threads);
                let ratio = r.commit_abort_ratio();
                if ratio.is_finite() {
                    print!(",{ratio:.2}");
                } else {
                    print!(",inf");
                }
            }
            println!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_factory_knows_all_panels() {
        for name in panel_workloads() {
            let w = make_workload(name, 100, true);
            assert!(!w.name().is_empty());
            assert!(w.heap_words() > 0);
        }
    }

    #[test]
    fn run_point_produces_sane_numbers() {
        let opts = HarnessOpts {
            quick: true,
            threads: vec![1],
            ops_per_thread: 50,
            json: false,
            trace: None,
        };
        let sc = Scenario::new(
            "t",
            pmem_sim::MediaKind::Optane,
            pmem_sim::DurabilityDomain::Adr,
            ptm::Algo::RedoLazy,
        );
        let r = run_point("tatp", &sc, &opts, 1);
        assert_eq!(r.ops, 50);
        assert!(r.throughput_mops() > 0.0);
    }
}
