//! Writing flight-recorder exports from a finished harness run.
//!
//! The binary dump embeds the `PtmStats`/`MachineStats` counter totals
//! of the run that produced it, so `trace_analyze --file` can cross-check
//! a dump offline without re-running the workload.

use std::sync::Arc;

use trace::export::{chrome_trace_json, write_binary, ExpectedTotals};
use trace::TraceSink;
use workloads::driver::RunResult;

/// Counter totals a lossless trace must reproduce, lifted from a run's
/// stats snapshots (the same counters `report::point_json` emits).
pub fn expected_totals(r: &RunResult) -> ExpectedTotals {
    ExpectedTotals {
        commits: r.ptm.commits,
        aborts: r.ptm.aborts,
        aborts_read_locked: r.ptm.aborts_read_locked,
        aborts_read_version: r.ptm.aborts_read_version,
        aborts_acquire: r.ptm.aborts_acquire,
        aborts_validation: r.ptm.aborts_validation,
        htm_commits: r.ptm.htm_commits,
        htm_logged_commits: r.ptm.htm_logged_commits,
        htm_aborts: r.ptm.htm_aborts,
        htm_capacity_aborts: r.ptm.htm_capacity_aborts,
        htm_conflict_aborts: r.ptm.htm_conflict_aborts,
        htm_explicit_aborts: r.ptm.htm_explicit_aborts,
        htm_fallbacks: r.ptm.htm_fallbacks,
        clwbs: r.mem.clwbs,
        clwb_writebacks: r.mem.clwb_writebacks,
        clwb_batches: r.mem.clwb_batches,
        sfences: r.mem.sfences,
        fence_wait_ns: r.mem.fence_wait_ns,
        wpq_stall_ns: r.mem.wpq_stall_ns,
        fence_joins: r.ptm.sfences_elided,
    }
}

/// Write both export formats for a recorded run: the compact binary dump
/// to `path` and Chrome trace-event JSON (Perfetto-loadable) to
/// `<path>.json`. Returns the number of events exported.
pub fn write_trace_exports(
    path: &str,
    sink: &Arc<TraceSink>,
    r: &RunResult,
) -> std::io::Result<u64> {
    let threads = sink.threads();
    let expected = expected_totals(r);
    std::fs::write(path, write_binary(&threads, &expected))?;
    std::fs::write(format!("{path}.json"), chrome_trace_json(&threads))?;
    Ok(threads.iter().map(|t| t.events.len() as u64).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{DurabilityDomain, MediaKind};
    use trace::export::read_binary;
    use workloads::driver::{RunConfig, Scenario};

    #[test]
    fn exports_roundtrip_and_embed_run_totals() {
        let sink = TraceSink::new(TraceSink::DEFAULT_RING_CAPACITY);
        let sc = Scenario::new(
            "trace-out",
            MediaKind::Optane,
            DurabilityDomain::Adr,
            ptm::Algo::RedoLazy,
        );
        let rc = RunConfig {
            threads: 2,
            ops_per_thread: 40,
            trace: Some(Arc::clone(&sink)),
            ..RunConfig::default()
        };
        let r = crate::run_point_with("tatp", &sc, &rc, true);

        let dir = std::env::temp_dir().join("ptm_trace_out_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.trc");
        let path = path.to_str().unwrap();
        let n = write_trace_exports(path, &sink, &r).unwrap();
        assert!(n > 0, "traced run exported no events");

        let dump = read_binary(&std::fs::read(path).unwrap()).unwrap();
        assert_eq!(dump.expected, expected_totals(&r));
        let json = std::fs::read_to_string(format!("{path}.json")).unwrap();
        trace::export::validate_json_structure(&json).unwrap();
    }
}
