//! Head-to-head comparison of the registered PTM algorithms (PR 5): per
//! (workload × durability domain × algorithm), virtual-time throughput,
//! abort rate, and the persistence work actually issued (clwb + sfence
//! counts, shadow traffic for copy-on-write).
//!
//! This is the experiment that proves the `ptm::algo` seam carries its
//! weight: the registered policies run the *same* driver, differ only
//! behind the `LogPolicy` trait, and land exactly where the paper's
//! logging analysis predicts — redo with O(1) fences per transaction,
//! undo with O(W) fences, cow shadow paying ~2x data writes for
//! line-granular publication, and htm-logged trading orec bookkeeping
//! for hardware sections sealed by a 2-fence back-end log. Under eADR
//! the software policies collapse toward the same cost.

use bench::{emit_point, run_point, HarnessOpts};
use pmem_sim::{DurabilityDomain, MediaKind};
use ptm::Algo;
use workloads::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = *opts.threads.first().unwrap_or(&1);
    if !opts.json {
        println!(
            "workload,scenario,threads,throughput_mops,abort_rate_pct,clwbs,sfences,\
             shadow_lines_allocated,publish_fences"
        );
    }
    for name in ["tpcc-hash", "btree-insert", "vacation-low"] {
        for (domain, dname) in [
            (DurabilityDomain::Adr, "ADR"),
            (DurabilityDomain::Eadr, "eADR"),
            (DurabilityDomain::Pdram, "PDRAM"),
            (DurabilityDomain::PdramLite, "PDRAM-lite"),
        ] {
            for algo in Algo::ALL {
                let sc = Scenario::new(
                    format!("Optane_{dname}_{}", algo.label()),
                    MediaKind::Optane,
                    domain,
                    algo,
                );
                let r = run_point(name, &sc, &opts, threads);
                if opts.json {
                    emit_point(&opts, name, &r);
                    continue;
                }
                let attempts = r.ptm.commits + r.ptm.aborts;
                let abort_rate = if attempts > 0 {
                    r.ptm.aborts as f64 / attempts as f64 * 100.0
                } else {
                    0.0
                };
                println!(
                    "{},{},{},{:.4},{:.2},{},{},{},{}",
                    name,
                    r.label,
                    r.threads,
                    r.throughput_mops(),
                    abort_rate,
                    r.mem.clwbs,
                    r.mem.sfences,
                    r.ptm.shadow_lines_allocated,
                    r.ptm.publish_fences,
                );
            }
        }
    }
}
