//! obs_report — continuous-telemetry report for the sharded open-loop
//! front-end: WPQ/abort-mix time series plus a tail-latency
//! critical-path decomposition (PR9 tentpole).
//!
//! Runs the sharded KV workload (8 shards x 1 worker by default — one
//! worker per shard keeps request claiming, and hence the whole trace,
//! deterministic) with a per-shard [`obs::Sampler`] and
//! [`trace::TraceSink`] armed for the measured phase. From the samplers
//! it renders the merged time series (virtual-time windows x shards);
//! from the trace it reconstructs per-request span trees and prints the
//! exact p50/p95/p99 sojourn decomposition (queue wait, execution,
//! commit, flush, fence wait, WPQ stall, backoff, rollback).
//!
//! Always-on validation (nonzero exit on failure):
//!
//! * **coverage** — one reconstructed span per completed request, no
//!   trace-ring loss;
//! * **1% closure** — the sum of span components equals the driver's
//!   independently-recorded sojourn total (`LatencyHistogram::sum()`,
//!   which is exact, unlike its bucketed percentiles) within 1%;
//! * **domain sanity** — under `--domain eadr` the series must contain
//!   zero fence-activity and zero WPQ-activity rows (eADR has no flush
//!   fences and no WPQ); under ADR both must be present.
//!
//! `--verify` replays the identical configuration and asserts the
//! exported series and decomposition are byte-identical (virtual-time
//! determinism of the telemetry pipeline).
//!
//! Flags: `--quick --json --domain adr|eadr --shards N`
//! `--threads-per-shard N --ops N --period NS --gap NS --seed S`
//! `--out PREFIX --verify`.

use std::sync::Arc;

use obs::series::{self, SeriesSummary, ShardRow};
use obs::spans::{self, Comp, Decomposition};
use obs::{export, Sampler};
use pmem_sim::DurabilityDomain;
use trace::TraceSink;
use workloads::{ShardedRunConfig, ShardedRunResult, StreamConfig};

struct Opts {
    json: bool,
    domain: DurabilityDomain,
    shards: usize,
    threads_per_shard: usize,
    ops: u64,
    period_ns: u64,
    gap_ns: u64,
    seed: u64,
    out: Option<String>,
    verify: bool,
}

fn parse_opts() -> Opts {
    let mut quick = false;
    let mut json = false;
    let mut domain = DurabilityDomain::Adr;
    let mut shards = 8usize;
    let mut threads_per_shard = 1usize;
    let mut ops: Option<u64> = None;
    let mut period_ns = obs::DEFAULT_PERIOD_NS;
    let mut gap_ns = 100u64;
    let mut seed = 42u64;
    let mut out = None;
    let mut verify = false;
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--domain" => {
                domain = match next(&mut args, "--domain").as_str() {
                    "adr" => DurabilityDomain::Adr,
                    "eadr" => DurabilityDomain::Eadr,
                    other => panic!("unknown domain `{other}` (adr|eadr)"),
                };
            }
            "--shards" => shards = next(&mut args, "--shards").parse().expect("bad shards"),
            "--threads-per-shard" => {
                threads_per_shard = next(&mut args, "--threads-per-shard")
                    .parse()
                    .expect("bad thread count");
            }
            "--ops" => ops = Some(next(&mut args, "--ops").parse().expect("bad op count")),
            "--period" => period_ns = next(&mut args, "--period").parse().expect("bad period"),
            "--gap" => gap_ns = next(&mut args, "--gap").parse().expect("bad gap"),
            "--seed" => seed = next(&mut args, "--seed").parse().expect("bad seed"),
            "--out" => out = Some(next(&mut args, "--out")),
            "--verify" => verify = true,
            other => panic!(
                "unknown flag `{other}` (known: --quick --json --domain --shards \
                 --threads-per-shard --ops --period --gap --seed --out --verify)"
            ),
        }
    }
    Opts {
        json,
        domain,
        shards,
        threads_per_shard,
        ops: ops.unwrap_or(if quick { 800 } else { 4_000 }),
        period_ns,
        gap_ns,
        seed,
        out,
        verify,
    }
}

struct Report {
    rows: Vec<ShardRow>,
    summary: SeriesSummary,
    op_spans: Vec<spans::OpSpan>,
    decomp: Decomposition,
    result: ShardedRunResult,
    trace_dropped: u64,
    sample_dropped: u64,
}

fn run(o: &Opts) -> Report {
    let mut rc = ShardedRunConfig {
        shards: o.shards,
        threads_per_shard: o.threads_per_shard,
        domain: o.domain,
        ..ShardedRunConfig::default()
    };
    rc.stream = StreamConfig {
        total_ops: o.ops,
        mean_gap_ns: o.gap_ns,
        seed: o.seed,
        ..StreamConfig::default()
    };
    // Size trace rings so the hottest shard keeps every event (the 1%
    // closure check below requires zero ring loss).
    let ring_cap = ((o.ops * 256 / o.shards as u64).max(1 << 12)).next_power_of_two() as usize;
    rc.trace = (0..o.shards)
        .map(|i| TraceSink::new_for_shard(ring_cap, i as u32))
        .collect();
    rc.obs = (0..o.shards)
        .map(|i| {
            Arc::new(Sampler::new_for_shard(
                o.period_ns,
                obs::DEFAULT_RING_CAPACITY,
                i,
            ))
        })
        .collect();

    let result = workloads::run_sharded_kv(&rc);

    let samplers: Vec<&Sampler> = rc.obs.iter().map(|s| s.as_ref()).collect();
    let rows = series::aggregate(&samplers);
    let summary = SeriesSummary::from_rows(&rows);
    let sample_dropped: u64 = samplers.iter().map(|s| s.dropped_samples()).sum();

    let mut threads = Vec::new();
    let mut trace_dropped = 0u64;
    for sink in &rc.trace {
        for t in sink.threads() {
            trace_dropped += t.dropped;
            threads.push(t);
        }
    }
    let (op_spans, dropped_events) = spans::reconstruct(&threads);
    let decomp = spans::decompose(&op_spans, dropped_events, &[50.0, 95.0, 99.0]);

    Report {
        rows,
        summary,
        op_spans,
        decomp,
        result,
        trace_dropped,
        sample_dropped,
    }
}

/// Canonical exported form of a report — what `--verify` compares
/// byte-for-byte across two identically-configured runs.
fn export_text(rep: &Report) -> String {
    let mut out = String::new();
    for row in &rep.rows {
        out.push_str(&export::series_row_json(row));
        out.push('\n');
    }
    out.push_str(&export::decomposition_json("sharded-kv", &rep.decomp));
    out.push('\n');
    out
}

/// Pick up to `n` evenly spaced windows for the text timeline.
fn timeline(rows: &[ShardRow], n: usize) -> Vec<(u64, u64, u64, u64, u64)> {
    let mut windows: Vec<u64> = rows.iter().map(|r| r.ts).collect();
    windows.dedup();
    let stride = windows.len().div_ceil(n).max(1);
    windows
        .iter()
        .step_by(stride)
        .map(|&ts| {
            let mut commits = 0u64;
            let mut aborts = 0u64;
            let mut backlog_hw = 0u64;
            let mut stall_ns = 0u64;
            for r in rows.iter().filter(|r| r.ts == ts) {
                commits += r.g.commits;
                aborts += r.g.aborts_total();
                backlog_hw = backlog_hw.max(r.g.wpq_backlog_hw_ns);
                stall_ns += r.g.wpq_stall_ns;
            }
            (ts, commits, aborts, backlog_hw, stall_ns)
        })
        .collect()
}

fn main() {
    let o = parse_opts();
    let rep = run(&o);
    let mut failures: Vec<String> = Vec::new();

    // Coverage: every completed request reconstructed, no ring loss.
    let hist_count = rep.result.sojourn.count();
    let span_count = rep.op_spans.len() as u64;
    if rep.trace_dropped > 0 {
        failures.push(format!(
            "trace rings dropped {} events; span totals would be lower bounds",
            rep.trace_dropped
        ));
    }
    if span_count != hist_count {
        failures.push(format!(
            "reconstructed {span_count} spans but the driver completed {hist_count} requests"
        ));
    }

    // 1% closure: span components vs the driver's exact sojourn sum.
    let span_total: u64 = rep.op_spans.iter().map(|s| s.total_ns()).sum();
    let hist_total = rep.result.sojourn.sum();
    let closure_pct = if hist_total == 0 {
        0.0
    } else {
        100.0 * (span_total as f64 - hist_total as f64).abs() / hist_total as f64
    };
    if closure_pct > 1.0 {
        failures.push(format!(
            "span components sum to {span_total} ns vs measured sojourn total \
             {hist_total} ns ({closure_pct:.3}% > 1%)"
        ));
    }

    // Domain sanity on the series.
    match o.domain {
        DurabilityDomain::Eadr => {
            if rep.summary.fence_rows != 0 || rep.summary.wpq_rows != 0 {
                failures.push(format!(
                    "eADR series shows fence/WPQ activity: {} fence rows, {} WPQ rows",
                    rep.summary.fence_rows, rep.summary.wpq_rows
                ));
            }
        }
        _ => {
            if rep.summary.fence_rows == 0 || rep.summary.wpq_rows == 0 {
                failures.push(format!(
                    "ADR series missing expected activity: {} fence rows, {} WPQ rows",
                    rep.summary.fence_rows, rep.summary.wpq_rows
                ));
            }
        }
    }

    if o.verify {
        let rep2 = run(&o);
        if export_text(&rep) != export_text(&rep2) {
            failures.push("replay produced a different series/decomposition".to_string());
        }
    }

    if let Some(prefix) = &o.out {
        let mut csv = export::series_csv_header();
        csv.push('\n');
        for row in &rep.rows {
            csv.push_str(&export::series_row_csv(row));
            csv.push('\n');
        }
        std::fs::write(format!("{prefix}.series.csv"), csv).expect("write csv");
        std::fs::write(format!("{prefix}.series.jsonl"), export_text(&rep)).expect("write jsonl");
    }

    if o.json {
        print!("{}", export_text(&rep));
        println!(
            "{{\"schema_version\":{},\"kind\":\"obs_validation\",\"domain\":\"{:?}\",\
             \"shards\":{},\"threads_per_shard\":{},\"ops\":{},\"spans\":{span_count},\
             \"requests\":{hist_count},\"span_total_ns\":{span_total},\
             \"sojourn_total_ns\":{hist_total},\"closure_pct\":{closure_pct:.4},\
             \"fence_rows\":{},\"wpq_rows\":{},\"series_rows\":{},\"windows\":{},\
             \"trace_dropped\":{},\"sample_dropped\":{},\"verified_deterministic\":{},\
             \"ok\":{}}}",
            export::SCHEMA_VERSION,
            o.domain,
            o.shards,
            o.threads_per_shard,
            o.ops,
            rep.summary.fence_rows,
            rep.summary.wpq_rows,
            rep.rows.len(),
            rep.summary.windows,
            rep.trace_dropped,
            rep.sample_dropped,
            o.verify,
            failures.is_empty()
        );
    } else {
        println!(
            "# obs_report: sharded-kv {}x{} {:?} period={}ns ops={}",
            o.shards, o.threads_per_shard, o.domain, o.period_ns, o.ops
        );
        let s = &rep.summary;
        println!(
            "series: rows={} windows={} shards={} span=[{}..{}]ns \
             fence_rows={} wpq_rows={} peak_window_commits={} sample_dropped={}",
            rep.rows.len(),
            s.windows,
            s.shards,
            s.first_ts,
            s.last_ts,
            s.fence_rows,
            s.wpq_rows,
            s.peak_window_commits,
            rep.sample_dropped
        );
        let t = &s.totals;
        println!(
            "totals: commits={} aborts={} sfences={} fence_wait_ns={} fence_joins={} \
             clwbs={} wpq_accepts={} wpq_stalls={} wpq_stall_ns={} backoffs={} \
             queue_waits={} queue_wait_ns={}",
            t.commits,
            t.aborts_total(),
            t.sfences,
            t.fence_wait_ns,
            t.fence_joins,
            t.clwbs,
            t.wpq_accepts,
            t.wpq_stalls,
            t.wpq_stall_ns,
            t.backoffs,
            t.queue_waits,
            t.queue_wait_ns
        );

        println!("## timeline (window_ts_ns, commits, aborts, wpq_backlog_hw_ns, wpq_stall_ns)");
        for (ts, commits, aborts, hw, stall) in timeline(&rep.rows, 16) {
            println!("{ts},{commits},{aborts},{hw},{stall}");
        }

        println!("## sojourn decomposition (ns)");
        print!("cohort,count,threshold_ns,mean_total");
        for c in Comp::ALL {
            print!(",{}", c.label());
        }
        println!();
        print!(
            "all,{},,{:.0}",
            rep.decomp.mean.count, rep.decomp.mean.mean_total_ns
        );
        for c in Comp::ALL {
            print!(",{:.0}", rep.decomp.mean.mean_comp_ns[c as usize]);
        }
        println!();
        for tail in &rep.decomp.tails {
            print!(
                "p{:.0},{},{},{:.0}",
                tail.pct, tail.cohort.count, tail.threshold_ns, tail.cohort.mean_total_ns
            );
            for c in Comp::ALL {
                print!(",{:.0}", tail.cohort.mean_comp_ns[c as usize]);
            }
            println!();
        }

        println!(
            "## validation: spans={span_count} requests={hist_count} \
             span_total={span_total}ns sojourn_total={hist_total}ns closure={closure_pct:.3}%{}",
            if o.verify {
                " replay=deterministic"
            } else {
                ""
            }
        );
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("obs_report: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
