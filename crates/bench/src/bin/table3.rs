//! Table III: speedup from (incorrectly) removing memory fences from the
//! write instrumentation of the ADR algorithms, per workload & algorithm.

use bench::{emit_point, run_point, HarnessOpts};
use ptm::Algo;
use workloads::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = *opts.threads.iter().max().unwrap_or(&8);
    if !opts.json {
        println!("workload,algo,correct_mops,nofence_mops,speedup_pct");
    }
    for name in ["tpcc-hash", "tatp", "vacation-low", "vacation-high"] {
        for algo in [Algo::UndoEager, Algo::RedoLazy] {
            let (correct, elided) = Scenario::fence_elision_pair(algo);
            let rc_correct = run_point(name, &correct, &opts, threads);
            let rc_elided = run_point(name, &elided, &opts, threads);
            if opts.json {
                emit_point(&opts, name, &rc_correct);
                emit_point(&opts, name, &rc_elided);
                continue;
            }
            let speedup =
                (rc_elided.throughput_mops() / rc_correct.throughput_mops() - 1.0) * 100.0;
            println!(
                "{},{},{:.4},{:.4},{:.1}",
                name,
                algo.label(),
                rc_correct.throughput_mops(),
                rc_elided.throughput_mops(),
                speedup
            );
        }
    }
}
