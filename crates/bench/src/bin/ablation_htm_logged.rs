//! Does back-end logging make HTM pay off under ADR? (PR 8 tentpole.)
//!
//! The plain hybrid (`ablation_htm`) is a no-op under ADR because a
//! `clwb` inside a hardware section aborts it. `Algo::HtmLogged` moves
//! all persistence *after* the section retires — buffered writes, then a
//! sealed redo-style back-end log (2 fences) and an unfenced lazy home
//! writeback — so the HTM fast path runs under ADR too.
//!
//! This ablation runs the memcached-like KV workload under ADR and
//! compares software redo against HtmLogged across a contention sweep
//! (working-set size controls key-collision probability). The claim the
//! `--quick` guard pins: at low contention and 1–2 threads, HtmLogged
//! matches or beats redo — fewer fences per commit outweigh the HTM
//! begin/commit overhead. Under high contention footprint conflicts
//! abort sections and the software fallback absorbs the work, so no
//! claim is asserted there.
//!
//! If the simulated machine has HTM disabled the comparison is
//! meaningless; the binary prints a skip note and exits 0.

use bench::{emit_point, run_boxed, HarnessOpts};
use pmem_sim::{DurabilityDomain, MachineConfig, MediaKind};
use ptm::Algo;
use workloads::driver::Scenario;
use workloads::KvStore;

fn main() {
    let opts = HarnessOpts::from_args();
    if !MachineConfig::default().htm.enabled {
        println!("# skipped: simulated HTM is disabled in this machine configuration");
        return;
    }
    if !opts.json {
        println!(
            "contention,items,threads,redo_mops,htm_logged_mops,speedup_pct,\
             logged_commit_pct,htm_fallbacks,redo_sfences,htm_sfences"
        );
    }
    // Working-set size sets the key-collision rate: 512 distinct 1 KB
    // values make same-key conflicts rare; 16 make them the common case.
    for (contention, items) in [("low", 512u64), ("high", 16u64)] {
        for threads in [1usize, 2] {
            let run = |algo: Algo| {
                let mut w = KvStore::new(items);
                let sc = Scenario::new(
                    format!("ADR_{}_{}", contention, algo.label()),
                    MediaKind::Optane,
                    DurabilityDomain::Adr,
                    algo,
                );
                run_boxed(&mut w, &sc, &opts.run_config(threads))
            };
            let redo = run(Algo::RedoLazy);
            let htm = run(Algo::HtmLogged);
            if opts.json {
                emit_point(&opts, &format!("kvstore-{contention}-redo"), &redo);
                emit_point(&opts, &format!("kvstore-{contention}-htm-logged"), &htm);
            } else {
                let logged_pct =
                    100.0 * htm.ptm.htm_logged_commits as f64 / htm.ptm.commits.max(1) as f64;
                println!(
                    "{},{},{},{:.4},{:.4},{:+.1},{:.1},{},{},{}",
                    contention,
                    items,
                    threads,
                    redo.throughput_mops(),
                    htm.throughput_mops(),
                    (htm.throughput_mops() / redo.throughput_mops() - 1.0) * 100.0,
                    logged_pct,
                    htm.ptm.htm_fallbacks,
                    redo.mem.sfences,
                    htm.mem.sfences,
                );
            }
            if contention == "low" {
                // The PR's acceptance claim, pinned at smoke scale: the
                // logged HTM path must carry the commits and must not
                // lose to software redo at low contention under ADR.
                assert!(
                    htm.ptm.htm_logged_commits > 0,
                    "HtmLogged committed nothing on the hardware path"
                );
                assert!(
                    htm.throughput_mops() >= redo.throughput_mops(),
                    "HtmLogged ({:.4} Mops) must not lose to redo ({:.4} Mops) \
                     at low contention under ADR ({} threads)",
                    htm.throughput_mops(),
                    redo.throughput_mops(),
                    threads,
                );
            }
        }
    }
}
