//! Does back-end logging make HTM pay off under ADR? (PR 8 tentpole.)
//!
//! The plain hybrid (`ablation_htm`) is a no-op under ADR because a
//! `clwb` inside a hardware section aborts it. `Algo::HtmLogged` moves
//! all persistence *after* the section retires — buffered writes, then a
//! sealed redo-style back-end log (2 fences) and an unfenced lazy home
//! writeback — so the HTM fast path runs under ADR too.
//!
//! This ablation runs the memcached-like KV workload under ADR and
//! compares software redo against HtmLogged across a contention sweep
//! (working-set size controls key-collision probability). The claim the
//! `--quick` guard pins: at low contention and 1–2 threads, HtmLogged
//! matches or beats redo — fewer fences per commit outweigh the HTM
//! begin/commit overhead. Under high contention footprint conflicts
//! abort sections and the software fallback absorbs the work, so no
//! claim is asserted there.
//!
//! A third arm rides the high-contention cell: HtmLogged with
//! contention-aware fallback pacing on (`htm_fastpath_threshold = 2`).
//! Once a (cause, footprint) signature has burned its retry budget
//! twice, later transactions with the same signature skip straight to
//! the software path instead of re-aborting hardware sections. The
//! guard asserts the pacer actually fires there
//! (`htm_fallback_fastpathed > 0`) and that paced throughput does not
//! lose to the unpaced hybrid.
//!
//! If the simulated machine has HTM disabled the comparison is
//! meaningless; the binary prints a skip note and exits 0.

use bench::{emit_point, run_boxed, HarnessOpts};
use pmem_sim::{DurabilityDomain, MachineConfig, MediaKind};
use ptm::Algo;
use workloads::driver::Scenario;
use workloads::KvStore;

fn main() {
    let opts = HarnessOpts::from_args();
    if !MachineConfig::default().htm.enabled {
        println!("# skipped: simulated HTM is disabled in this machine configuration");
        return;
    }
    if !opts.json {
        println!(
            "contention,items,threads,redo_mops,htm_logged_mops,speedup_pct,\
             logged_commit_pct,htm_fallbacks,redo_sfences,htm_sfences,\
             paced_mops,htm_fallback_fastpathed"
        );
    }
    // Working-set size sets the key-collision rate: 512 distinct 1 KB
    // values make same-key conflicts rare; 16 make them the common case.
    for (contention, items) in [("low", 512u64), ("high", 16u64)] {
        for threads in [1usize, 2] {
            let run = |algo: Algo, pace: u32| {
                let mut w = KvStore::new(items);
                let sc = Scenario::new(
                    format!("ADR_{}_{}", contention, algo.label()),
                    MediaKind::Optane,
                    DurabilityDomain::Adr,
                    algo,
                );
                let mut rc = opts.run_config(threads);
                rc.ptm.htm_fastpath_threshold = pace;
                run_boxed(&mut w, &sc, &rc)
            };
            let redo = run(Algo::RedoLazy, 0);
            let htm = run(Algo::HtmLogged, 0);
            // Pacing only matters where sections keep re-aborting, so
            // the paced arm runs in the high-contention cells only.
            let paced = (contention == "high" && threads >= 2).then(|| run(Algo::HtmLogged, 2));
            if opts.json {
                emit_point(&opts, &format!("kvstore-{contention}-redo"), &redo);
                emit_point(&opts, &format!("kvstore-{contention}-htm-logged"), &htm);
                if let Some(p) = &paced {
                    emit_point(&opts, &format!("kvstore-{contention}-htm-logged-paced"), p);
                }
            } else {
                let logged_pct =
                    100.0 * htm.ptm.htm_logged_commits as f64 / htm.ptm.commits.max(1) as f64;
                println!(
                    "{},{},{},{:.4},{:.4},{:+.1},{:.1},{},{},{},{:.4},{}",
                    contention,
                    items,
                    threads,
                    redo.throughput_mops(),
                    htm.throughput_mops(),
                    (htm.throughput_mops() / redo.throughput_mops() - 1.0) * 100.0,
                    logged_pct,
                    htm.ptm.htm_fallbacks,
                    redo.mem.sfences,
                    htm.mem.sfences,
                    paced.as_ref().map_or(0.0, |p| p.throughput_mops()),
                    paced.as_ref().map_or(0, |p| p.ptm.htm_fallback_fastpathed),
                );
            }
            if let Some(p) = &paced {
                // Satellite guard: under sustained same-signature
                // conflicts the pacer must actually shortcut retries,
                // and skipping doomed hardware attempts must not cost
                // throughput.
                assert!(
                    p.ptm.htm_fallback_fastpathed > 0,
                    "fallback pacing never fired at high contention \
                     ({} threads, threshold 2)",
                    threads,
                );
                assert!(
                    p.throughput_mops() >= 0.8 * htm.throughput_mops(),
                    "paced HtmLogged ({:.4} Mops) fell more than 20% below the \
                     unpaced hybrid ({:.4} Mops) at high contention",
                    p.throughput_mops(),
                    htm.throughput_mops(),
                );
            }
            if contention == "low" {
                // The PR's acceptance claim, pinned at smoke scale: the
                // logged HTM path must carry the commits and must not
                // lose to software redo at low contention under ADR.
                assert!(
                    htm.ptm.htm_logged_commits > 0,
                    "HtmLogged committed nothing on the hardware path"
                );
                assert!(
                    htm.throughput_mops() >= redo.throughput_mops(),
                    "HtmLogged ({:.4} Mops) must not lose to redo ({:.4} Mops) \
                     at low contention under ADR ({} threads)",
                    htm.throughput_mops(),
                    redo.throughput_mops(),
                    threads,
                );
            }
        }
    }
}
