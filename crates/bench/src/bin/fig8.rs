//! Figure 8: memcached-like KV throughput (single worker thread) vs
//! working-set size, across durability domains. Working sets are scaled
//! to the simulator's cache geometry (4 MB L3, 64 MB DRAM cache) but
//! preserve the paper's four regimes: fits-in-L3, fits-in-DRAM,
//! exceeds-DRAM, index-uncacheable.

use bench::{emit_point, run_boxed, HarnessOpts};
use pmem_sim::{DurabilityDomain, MediaKind};
use ptm::Algo;
use workloads::driver::{RunConfig, Scenario};
use workloads::KvStore;

fn main() {
    let opts = HarnessOpts::from_args();
    // items = working-set KB (1 KB values).
    let working_sets_kb: Vec<u64> = if opts.quick {
        vec![512, 8 << 10, 24 << 10]
    } else {
        vec![2 << 10, 16 << 10, 48 << 10, 96 << 10, 160 << 10, 256 << 10]
    };
    let scenarios = vec![
        Scenario::new(
            "DRAM_R",
            MediaKind::Dram,
            DurabilityDomain::Eadr,
            Algo::RedoLazy,
        ),
        Scenario::new(
            "ADR_R",
            MediaKind::Optane,
            DurabilityDomain::Adr,
            Algo::RedoLazy,
        ),
        Scenario::new(
            "ADR_U",
            MediaKind::Optane,
            DurabilityDomain::Adr,
            Algo::UndoEager,
        ),
        Scenario::new(
            "eADR_R",
            MediaKind::Optane,
            DurabilityDomain::Eadr,
            Algo::RedoLazy,
        ),
        Scenario::new(
            "eADR_U",
            MediaKind::Optane,
            DurabilityDomain::Eadr,
            Algo::UndoEager,
        ),
        Scenario::new(
            "PDRAM_R",
            MediaKind::Optane,
            DurabilityDomain::Pdram,
            Algo::RedoLazy,
        ),
        Scenario::new(
            "PDRAM_U",
            MediaKind::Optane,
            DurabilityDomain::Pdram,
            Algo::UndoEager,
        ),
        Scenario::new(
            "PDRAM-Lite",
            MediaKind::Optane,
            DurabilityDomain::PdramLite,
            Algo::RedoLazy,
        ),
    ];
    let rc = RunConfig {
        threads: 1,
        ops_per_thread: opts.ops_per_thread,
        ..RunConfig::default()
    };
    let dram_capacity_kb = (rc.model.dram_cache_bytes >> 10) as u64;
    if !opts.json {
        println!("scenario,working_set_mb,requests_per_vsec");
    }
    for sc in &scenarios {
        for &ws_kb in &working_sets_kb {
            // The paper: "for the DRAM curves, operation beyond [DRAM
            // capacity] is not possible".
            if sc.heap_media == MediaKind::Dram && ws_kb > dram_capacity_kb {
                continue;
            }
            let mut w = KvStore::new(ws_kb);
            let r = run_boxed(&mut w, sc, &rc);
            if opts.json {
                emit_point(&opts, &format!("kvstore-{ws_kb}kb"), &r);
                continue;
            }
            println!(
                "{},{:.1},{:.0}",
                sc.label,
                ws_kb as f64 / 1024.0,
                r.throughput_mops() * 1_000_000.0
            );
        }
    }
}
