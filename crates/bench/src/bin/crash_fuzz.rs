//! Long-running crash-consistency fuzzer: rounds of concurrent bank
//! transfers frozen mid-flight by a power failure, rebooted, recovered,
//! and checked for exact conservation — across algorithms, durability
//! domains, adversary policies and adversarial seeds. A CI-style soak
//! for the recovery protocols; `--ops N` sets the number of rounds
//! (default 40). For *exhaustive* (rather than sampled) crash coverage
//! of a deterministic workload, see the `crash_sites` binary.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use palloc::{layout, PHeap};
use pmem_sim::{AdversaryPolicy, DurabilityDomain, Machine, MachineConfig, PAddr};
use ptm::{recover, Algo, Ptm, PtmConfig, TxThread};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ACCOUNTS: u64 = 48;
const INITIAL: u64 = 1_000;
const THREADS: usize = 3;

fn main() {
    let rounds: u64 = std::env::args()
        .skip_while(|a| a != "--ops")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let mut failures = 0;
    let mut total_redo = 0u64;
    let mut total_undo = 0u64;
    for round in 0..rounds {
        // Rotate through the crash adversary policies: extreme images
        // (all-old / all-new) catch recovery bugs fair coin flips miss.
        let policy = AdversaryPolicy::SWEEP[round as usize % AdversaryPolicy::SWEEP.len()];
        for (algo, domain) in [
            (Algo::RedoLazy, DurabilityDomain::Adr),
            (Algo::UndoEager, DurabilityDomain::Adr),
            (Algo::RedoLazy, DurabilityDomain::Eadr),
            (Algo::RedoLazy, DurabilityDomain::PdramLite),
        ] {
            let (total, redo, undo) = run_round(algo, domain, policy, round);
            total_redo += redo;
            total_undo += undo;
            if total != ACCOUNTS * INITIAL {
                eprintln!(
                    "FAIL round {round} {algo:?}/{domain:?}/{policy}: total {total} != {}",
                    ACCOUNTS * INITIAL
                );
                failures += 1;
            }
        }
        if round % 10 == 9 {
            println!(
                "round {}/{rounds}: {} redo replays, {} undo rollbacks so far, {failures} failures",
                round + 1,
                total_redo,
                total_undo
            );
        }
    }
    println!("crash_fuzz: {rounds} rounds, {failures} failures, {total_redo} redo replays, {total_undo} undo rollbacks");
    std::process::exit(if failures > 0 { 1 } else { 0 });
}

fn run_round(
    algo: Algo,
    domain: DurabilityDomain,
    policy: AdversaryPolicy,
    seed: u64,
) -> (u64, u64, u64) {
    let machine = Machine::new(MachineConfig {
        domain,
        track_persistence: true,
        ..MachineConfig::default()
    });
    let heap = PHeap::format(&machine, "bank", 1 << 15, 4);
    let ptm = Ptm::new(PtmConfig {
        algo,
        ..PtmConfig::default()
    });
    machine.begin_run(1, u64::MAX);
    let table = {
        let mut th = TxThread::new(ptm.clone(), heap.clone(), machine.session(0));
        let h = Arc::clone(&heap);
        let table = h.alloc(th.session_mut(), ACCOUNTS as usize);
        th.run(|tx| {
            for i in 0..ACCOUNTS {
                tx.write_at(table, i, INITIAL)?;
            }
            Ok(())
        });
        heap.set_root(th.session_mut(), 0, table);
        table
    };
    let stop = Arc::new(AtomicBool::new(false));
    machine.begin_run(THREADS, u64::MAX);
    let image = std::thread::scope(|scope| {
        for tid in 0..THREADS {
            let machine = Arc::clone(&machine);
            let ptm = Arc::clone(&ptm);
            let heap = Arc::clone(&heap);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut th = TxThread::new(ptm, heap, machine.session(tid));
                let mut rng = SmallRng::seed_from_u64(seed ^ (tid as u64) << 32);
                while !stop.load(Ordering::Relaxed) {
                    let from = rng.gen_range(0..ACCOUNTS);
                    let to = rng.gen_range(0..ACCOUNTS);
                    let amt = rng.gen_range(1..60);
                    th.run(|tx| {
                        let f = tx.read_at(table, from)?;
                        let t = tx.read_at(table, to)?;
                        if from != to && f >= amt {
                            tx.write_at(table, from, f - amt)?;
                            tx.write_at(table, to, t + amt)?;
                        }
                        Ok(())
                    });
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(8 + (seed % 13)));
        machine.freeze();
        let image = machine.crash_with(seed.wrapping_mul(0x9E37_79B9), policy);
        stop.store(true, Ordering::Relaxed);
        machine.thaw();
        image
    });
    let machine2 = Machine::reboot(
        &image,
        MachineConfig {
            domain,
            track_persistence: true,
            ..MachineConfig::default()
        },
    );
    let report = recover(&machine2);
    let pool = machine2.pool(heap.pool().id());
    let table2 = PAddr(pool.raw_load(layout::OFF_ROOTS));
    let total = (0..ACCOUNTS)
        .map(|i| pool.raw_load(table2.word() + i))
        .sum();
    (
        total,
        report.redo_replayed as u64,
        report.undo_rolled_back as u64,
    )
}
