//! Where does transaction time go? The paper's §III-B argument as a
//! table: per (workload × durability domain × algorithm), the share of
//! virtual transaction time spent in each phase.
//!
//! The headline shape: under ADR on Optane the flush + fence-wait share
//! is substantial (the persistence choreography *is* the overhead);
//! under eADR both collapse to ~0 because the `clwb`/`sfence` calls are
//! elided — the surviving costs are speculation, logging stores and
//! validation.

use bench::{emit_point, run_point, HarnessOpts};
use pmem_sim::{DurabilityDomain, MediaKind};
use ptm::{Algo, Phase};
use workloads::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = *opts.threads.first().unwrap_or(&1);
    if !opts.json {
        print!("workload,scenario,threads");
        for p in Phase::ALL {
            print!(",{}_pct", p.label());
        }
        println!(",persistence_pct,total_phase_ns");
    }
    for name in ["btree-insert", "tpcc-hash", "vacation-low"] {
        for (domain, dname) in [
            (DurabilityDomain::Adr, "ADR"),
            (DurabilityDomain::Eadr, "eADR"),
        ] {
            for algo in [Algo::UndoEager, Algo::RedoLazy] {
                let sc = Scenario::new(
                    format!("Optane_{dname}_{}", algo.label()),
                    MediaKind::Optane,
                    domain,
                    algo,
                );
                let r = run_point(name, &sc, &opts, threads);
                if opts.json {
                    emit_point(&opts, name, &r);
                    continue;
                }
                print!("{},{},{}", name, r.label, r.threads);
                for p in Phase::ALL {
                    print!(",{:.1}", r.phases.share(p) * 100.0);
                }
                println!(
                    ",{:.1},{}",
                    r.phases.persistence_share() * 100.0,
                    r.phases.total_ns()
                );
            }
        }
    }
}
