//! Where does transaction time go? The paper's §III-B argument as a
//! table: per (workload × durability domain × algorithm), the share of
//! virtual transaction time spent in each phase.
//!
//! The headline shape: under ADR on Optane the flush + fence-wait share
//! is substantial (the persistence choreography *is* the overhead);
//! under eADR both collapse to ~0 because the `clwb`/`sfence` calls are
//! elided — the surviving costs are speculation, logging stores and
//! validation.
//!
//! With `--trace <path>`, the tpcc-hash / ADR / redo point is re-run with
//! the flight recorder attached and both export formats are written
//! (binary dump to `<path>`, Chrome trace-event JSON to `<path>.json`)
//! for `trace_analyze --file <path>` to cross-check offline.

use bench::trace_out::write_trace_exports;
use bench::{emit_point, run_point, run_point_with, HarnessOpts};
use pmem_sim::{DurabilityDomain, MediaKind};
use ptm::{Algo, Phase};
use workloads::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = *opts.threads.first().unwrap_or(&1);
    if !opts.json {
        print!("workload,scenario,threads");
        for p in Phase::ALL {
            print!(",{}_pct", p.label());
        }
        println!(",persistence_pct,total_phase_ns");
    }
    for name in ["btree-insert", "tpcc-hash", "vacation-low"] {
        for (domain, dname) in [
            (DurabilityDomain::Adr, "ADR"),
            (DurabilityDomain::Eadr, "eADR"),
        ] {
            for algo in Algo::ALL {
                let sc = Scenario::new(
                    format!("Optane_{dname}_{}", algo.label()),
                    MediaKind::Optane,
                    domain,
                    algo,
                );
                let traced = opts.trace.as_deref().filter(|_| {
                    name == "tpcc-hash" && domain == DurabilityDomain::Adr && algo == Algo::RedoLazy
                });
                let r = match traced {
                    Some(path) => {
                        // Size the ring so the dump is lossless and
                        // `trace_analyze --file` can cross-check exactly
                        // (tpcc-hash records a few hundred events/op).
                        let cap = (opts.ops_per_thread as usize * 512).next_power_of_two();
                        let sink = trace::TraceSink::new(cap);
                        let rc = workloads::driver::RunConfig {
                            trace: Some(std::sync::Arc::clone(&sink)),
                            ..opts.run_config(threads)
                        };
                        let r = run_point_with(name, &sc, &rc, opts.quick);
                        let n = write_trace_exports(path, &sink, &r)
                            .unwrap_or_else(|e| panic!("writing trace to {path}: {e}"));
                        eprintln!("# trace: {n} events -> {path} and {path}.json");
                        r
                    }
                    None => run_point(name, &sc, &opts, threads),
                };
                if opts.json {
                    emit_point(&opts, name, &r);
                    continue;
                }
                print!("{},{},{}", name, r.label, r.threads);
                for p in Phase::ALL {
                    print!(",{:.1}", r.phases.share(p) * 100.0);
                }
                println!(
                    ",{:.1},{}",
                    r.phases.persistence_share() * 100.0,
                    r.phases.total_ns()
                );
            }
        }
    }
}
