//! Figure 6: the proposed durability domains (PDRAM, PDRAM-Lite) against
//! DRAM and eADR, for the six panel workloads.

use bench::{panel_workloads, run_figure, HarnessOpts};
use workloads::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!(
        "# fig6: {} workloads x 7 scenarios x {:?} threads",
        panel_workloads().len(),
        opts.threads
    );
    run_figure(&panel_workloads(), &Scenario::fig6_grid(), &opts);
}
