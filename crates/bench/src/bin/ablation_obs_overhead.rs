//! Sampling-off overhead ablation (PR9 acceptance): btree-insert under
//! Optane/ADR/redo at 1 and 4 threads, time-series sampler compiled in
//! but disarmed vs armed.
//!
//! Three claims, all checked here:
//!
//! * **Off is the default path**: with no sampler attached the per-site
//!   cost is one relaxed load at session construction — repeated
//!   single-threaded off runs must report *bit-identical* virtual time
//!   (sampling disabled changes nothing; multi-threaded virtual time
//!   wobbles with OS lock ordering regardless of telemetry).
//! * **On never charges virtual time**: the sampler folds events into
//!   its current window using the thread's existing clock and flushes
//!   into a pre-allocated ring, so at 1 thread the armed run's virtual
//!   time is bit-identical to the off run. Asserted exactly.
//! * **≤2% at 4 threads**: with real threads the OS interleaves lock
//!   acquisition differently run to run; each arm reports its best of
//!   five runs to damp that noise and the 2% acceptance bound is
//!   asserted on the damped figures.

use std::sync::Arc;

use bench::HarnessOpts;
use pmem_sim::{DurabilityDomain, MediaKind};
use workloads::driver::RunConfig;
use workloads::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    let sc = Scenario::new(
        "Optane_ADR_R",
        MediaKind::Optane,
        DurabilityDomain::Adr,
        ptm::Algo::RedoLazy,
    );
    if !opts.json {
        println!("workload,threads,mode,throughput_mops,elapsed_virtual_ns,samples,regression_pct");
    }
    const RUNS: usize = 5;
    for &threads in &[1usize, 4] {
        let base = opts.run_config(threads);
        let offs: Vec<_> = (0..RUNS)
            .map(|_| bench::run_point_with("btree-insert", &sc, &base, opts.quick))
            .collect();
        // Disabled sampling is the untouched default path: every
        // single-threaded off run must land on the same virtual time,
        // bit for bit. (At 4 threads the OS interleaves lock
        // acquisition differently run to run, so virtual time wobbles
        // there with or without telemetry — that noise is what the
        // best-of-5 damping below is for.)
        if threads == 1 {
            assert!(
                offs.iter()
                    .all(|r| r.elapsed_virtual_ns == offs[0].elapsed_virtual_ns),
                "off runs disagree on virtual time — sampling-off path is not inert"
            );
        }
        let off = offs
            .into_iter()
            .max_by(|a, b| a.throughput_mops().total_cmp(&b.throughput_mops()))
            .unwrap();

        let mut samples = 0u64;
        let on = (0..RUNS)
            .map(|_| {
                let sampler = Arc::new(obs::Sampler::with_defaults());
                let rc_on = RunConfig {
                    obs: Some(Arc::clone(&sampler)),
                    ..base.clone()
                };
                let r = bench::run_point_with("btree-insert", &sc, &rc_on, opts.quick);
                samples = sampler
                    .threads()
                    .iter()
                    .map(|t| t.samples.len() as u64 + t.dropped)
                    .sum();
                r
            })
            .max_by(|a, b| a.throughput_mops().total_cmp(&b.throughput_mops()))
            .unwrap();

        if threads == 1 {
            // Single-threaded virtual execution is deterministic and the
            // sampler never advances the clock: armed == disarmed exactly.
            assert_eq!(
                on.elapsed_virtual_ns, off.elapsed_virtual_ns,
                "armed sampler perturbed single-threaded virtual time"
            );
        }

        let regression =
            100.0 * (off.throughput_mops() - on.throughput_mops()) / off.throughput_mops();
        if opts.json {
            println!(
                "{{\"workload\":\"btree-insert\",\"ablation\":\"obs_overhead\",\
                 \"threads\":{threads},\"off_mops\":{:.6},\"on_mops\":{:.6},\
                 \"off_elapsed_virtual_ns\":{},\"on_elapsed_virtual_ns\":{},\
                 \"samples\":{samples},\"regression_pct\":{regression:.3}}}",
                off.throughput_mops(),
                on.throughput_mops(),
                off.elapsed_virtual_ns,
                on.elapsed_virtual_ns
            );
        } else {
            println!(
                "btree-insert,{threads},off,{:.4},{},0,",
                off.throughput_mops(),
                off.elapsed_virtual_ns
            );
            println!(
                "btree-insert,{threads},on,{:.4},{},{samples},{regression:.3}",
                on.throughput_mops(),
                on.elapsed_virtual_ns
            );
        }
        assert!(
            regression.abs() <= 2.0,
            "sampling regression {regression:.3}% exceeds the 2% acceptance bound"
        );
    }
}
