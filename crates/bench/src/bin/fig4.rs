//! Figure 4: TATP throughput vs threads, same scenario grid as Fig. 3.

use bench::{run_figure, HarnessOpts};
use workloads::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("# fig4: tatp x 8 scenarios x {:?} threads", opts.threads);
    run_figure(&["tatp"], &Scenario::fig3_grid(), &opts);
}
