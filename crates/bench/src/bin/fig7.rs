//! Figure 7: TATP under the proposed durability domains.

use bench::{run_figure, HarnessOpts};
use workloads::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("# fig7: tatp x 7 scenarios x {:?} threads", opts.threads);
    run_figure(&["tatp"], &Scenario::fig6_grid(), &opts);
}
