//! Ablation 1 (DESIGN.md §5): the paper's split-log optimization — log
//! index in DRAM vs the whole log in Optane.

use bench::{emit_point, run_point_with, HarnessOpts};
use pmem_sim::{DurabilityDomain, MediaKind};
use ptm::Algo;
use workloads::driver::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    if !opts.json {
        println!("workload,algo,threads,split_mops,unsplit_mops,split_speedup_pct");
    }
    for name in ["tpcc-hash", "tatp", "btree-insert"] {
        for algo in [Algo::RedoLazy, Algo::UndoEager] {
            for &threads in &opts.threads {
                let sc = Scenario::new("adr", MediaKind::Optane, DurabilityDomain::Adr, algo);
                let mut rc = opts.run_config(threads);
                rc.ptm.split_log_index = true;
                let split = run_point_with(name, &sc, &rc, opts.quick);
                rc.ptm.split_log_index = false;
                let unsplit = run_point_with(name, &sc, &rc, opts.quick);
                if opts.json {
                    emit_point(&opts, &format!("{name}-split"), &split);
                    emit_point(&opts, &format!("{name}-unsplit"), &unsplit);
                    continue;
                }
                println!(
                    "{},{},{},{:.4},{:.4},{:.1}",
                    name,
                    algo.label(),
                    threads,
                    split.throughput_mops(),
                    unsplit.throughput_mops(),
                    (split.throughput_mops() / unsplit.throughput_mops() - 1.0) * 100.0
                );
            }
        }
    }
}
