//! bench_trend — regression guard over archived bench results (PR9).
//!
//! Discovers `results/BENCH_PR<N>.json` archives (one JSONL file per
//! PR, produced by `run_benches.sh`), parses every line's identity
//! (workload, scenario, population) and headline metrics (throughput,
//! p99), and diffs each consecutive archive pair. A point regresses
//! when its throughput drops beyond the throughput tolerance (default
//! 10% — virtual-time results are deterministic, so the tolerance
//! absorbs intentional model retuning, not noise), or its p99 rises
//! beyond the p99 tolerance (default 60%: archived percentiles are
//! power-bucketed with 33–50% bucket steps, so anything under one
//! bucket is quantization).
//!
//! Archives from PR ≤ 8 predate `schema_version` stamping and parse as
//! version 1; lines stamped with a *newer* schema than this binary
//! understands are skipped and counted, never misread.
//!
//! Exit is nonzero when the newest pair has regressions, unless
//! `--quick` (CI smoke: history may be empty or single-archive — both
//! are OK). Truncated / partially written archive lines (a run killed
//! mid-append) degrade gracefully: the complete lines still diff, a
//! warning goes to stderr, and a zero-point archive is ignored rather
//! than failing the whole diff.
//!
//! Flags: `--quick --json --dir PATH --tolerance PCT --p99-tolerance PCT`.

use std::path::PathBuf;

use obs::trend::{self, Tolerance, TrendReport};

struct Opts {
    quick: bool,
    json: bool,
    dir: PathBuf,
    tol: Tolerance,
}

fn parse_opts() -> Opts {
    let mut quick = false;
    let mut json = false;
    let mut dir = PathBuf::from("results");
    let mut tol = Tolerance::default();
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--dir" => dir = PathBuf::from(next(&mut args, "--dir")),
            "--tolerance" => {
                tol.throughput = next(&mut args, "--tolerance")
                    .parse::<f64>()
                    .expect("bad tolerance")
                    / 100.0;
            }
            "--p99-tolerance" => {
                tol.p99 = next(&mut args, "--p99-tolerance")
                    .parse::<f64>()
                    .expect("bad tolerance")
                    / 100.0;
            }
            other => panic!(
                "unknown flag `{other}` (known: --quick --json --dir --tolerance \
                 --p99-tolerance)"
            ),
        }
    }
    Opts {
        quick,
        json,
        dir,
        tol,
    }
}

fn emit_pair(o: &Opts, prev_n: u64, next_n: u64, rep: &TrendReport) {
    if o.json {
        print!(
            "{{\"schema_version\":{},\"kind\":\"bench_trend\",\"prev\":\"PR{prev_n}\",\
             \"next\":\"PR{next_n}\",\"common\":{},\"added\":{},\"removed\":{},\
             \"regressions\":{},\"deltas\":[",
            obs::export::SCHEMA_VERSION,
            rep.common,
            rep.added,
            rep.removed,
            rep.regressions
        );
        for (i, d) in rep.deltas.iter().filter(|d| d.regressed).enumerate() {
            if i > 0 {
                print!(",");
            }
            print!(
                "{{\"key\":\"{}\",\"metric\":\"{}\",\"prev\":{:.4},\"next\":{:.4},\
                 \"pct\":{:.2}}}",
                d.key, d.metric, d.prev, d.next, d.pct
            );
        }
        println!("]}}");
        return;
    }
    println!(
        "BENCH_PR{prev_n} -> BENCH_PR{next_n}: {} common points, {} added, {} removed, \
         {} regression(s) beyond {:.0}% throughput / {:.0}% p99",
        rep.common,
        rep.added,
        rep.removed,
        rep.regressions,
        o.tol.throughput * 100.0,
        o.tol.p99 * 100.0
    );
    // Largest movers first, regressions always included.
    let mut deltas: Vec<_> = rep.deltas.iter().collect();
    deltas.sort_by(|a, b| b.pct.abs().total_cmp(&a.pct.abs()));
    for d in deltas
        .iter()
        .enumerate()
        .filter(|(i, d)| d.regressed || *i < 5)
        .map(|(_, d)| d)
    {
        println!(
            "  {} {} {:.4} -> {:.4} ({:+.2}%){}",
            if d.regressed { "REGRESSED" } else { "moved" },
            format_args!("{} [{}]", d.key, d.metric),
            d.prev,
            d.next,
            d.pct,
            if d.regressed { " !!" } else { "" }
        );
    }
}

fn main() {
    let o = parse_opts();
    let archives = trend::discover_archives(&o.dir);
    if archives.len() < 2 {
        let msg = format!(
            "bench_trend: {} archive(s) under {} — need 2 to diff",
            archives.len(),
            o.dir.display()
        );
        if o.quick {
            println!("{msg} (ok under --quick)");
            return;
        }
        eprintln!("{msg}");
        std::process::exit(1);
    }

    let mut parsed = Vec::new();
    for (n, path) in &archives {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let arch = trend::parse_archive(&text);
        if arch.truncated > 0 {
            // A partially written archive (run killed mid-append) is a
            // warning, not an abort: the complete lines still diff.
            eprintln!(
                "bench_trend: warning: {} has {} truncated line(s); \
                 diffing the {} complete point(s)",
                path.display(),
                arch.truncated,
                arch.points.len()
            );
        }
        if arch.points.is_empty() {
            eprintln!(
                "bench_trend: warning: {} parsed to zero points \
                 ({} newer-schema, {} truncated lines skipped) — archive ignored",
                path.display(),
                arch.skipped_newer,
                arch.truncated
            );
            continue;
        }
        parsed.push((*n, arch.points, arch.skipped_newer));
    }
    if parsed.len() < 2 {
        println!(
            "bench_trend: fewer than 2 parseable archives under {} — nothing to diff",
            o.dir.display()
        );
        return;
    }

    let mut newest_regressions = 0usize;
    for pair in parsed.windows(2) {
        let (prev_n, prev, _) = &pair[0];
        let (next_n, next, _) = &pair[1];
        let rep = trend::diff(prev, next, o.tol);
        emit_pair(&o, *prev_n, *next_n, &rep);
        newest_regressions = rep.regressions;
    }

    if newest_regressions > 0 && !o.quick {
        eprintln!(
            "bench_trend: {newest_regressions} regression(s) in the newest archive pair \
             beyond tolerance ({:.0}% throughput / {:.0}% p99)",
            o.tol.throughput * 100.0,
            o.tol.p99 * 100.0
        );
        std::process::exit(1);
    }
}
