//! Extension ablation: the TPCC order index structure — the paper's two
//! variants (B+Tree, Hash Table) plus this repository's skip list. The
//! interesting axis is index write-set size (B+Tree splits cascade; the
//! skip list touches only splice points) and its effect on abort rates.

use bench::{emit_point, run_point, HarnessOpts};
use pmem_sim::{DurabilityDomain, MediaKind};
use ptm::Algo;
use workloads::driver::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    if !opts.json {
        println!("index,threads,throughput_mops,commit_abort_ratio,max_write_entries");
    }
    for name in ["tpcc-btree", "tpcc-hash", "tpcc-skiplist"] {
        for &threads in &opts.threads {
            let sc = Scenario::new(
                "adr_R",
                MediaKind::Optane,
                DurabilityDomain::Adr,
                Algo::RedoLazy,
            );
            let r = run_point(name, &sc, &opts, threads);
            if opts.json {
                emit_point(&opts, name, &r);
                continue;
            }
            let ratio = r.commit_abort_ratio();
            println!(
                "{},{},{:.4},{},{}",
                name,
                threads,
                r.throughput_mops(),
                if ratio.is_finite() {
                    format!("{ratio:.2}")
                } else {
                    "inf".into()
                },
                r.ptm.max_write_entries,
            );
        }
    }
}
