//! recovery_bench — restart latency vs pool size × dirtiness × workers.
//!
//! The restart-time observability bench for the parallel recovery + online
//! restart-GC pipeline. For each `(pool_words, dirty_entries)` cell one
//! crash image is crafted — a `PtmDb`-compatible heap populated with a
//! root-reachable chain plus deliberately leaked blocks, and [`LOGS`]
//! committed-but-unretired redo logs carrying the dirty entries — and that
//! *same* image is rebooted once per worker count, so the worker sweep
//! measures the recovery pipeline and nothing else. Times are host
//! wall-clock (restart runs before any virtual clock exists); each point
//! is best-of-[`REPS`].
//!
//! Output: CSV to stdout, or one JSON object per point with `--json`
//! (see [`bench::report::restart_point_json`] for the schema).
//!
//! `--quick` shrinks the grid and enforces the restart-SLO guards:
//!
//! 1. at the largest quick cell, recovery with `min(4, cores)` workers
//!    must not be slower than 0.9x the serial pass (exit 1 otherwise).
//!    On a single-core host the ratio degenerates to serial-vs-serial —
//!    workers timesharing one CPU cannot beat serial by construction —
//!    so the regression coverage there comes from guard 2;
//! 2. 4-worker recovery (even on one core) must stay within thread
//!    bookkeeping of serial: `<= 3x serial + 2 ms` catches pathological
//!    serialization — lock convoys, quadratic merges — on any host;
//! 3. a read must be servable behind the online-GC epoch fence, no
//!    later than a bounded factor of the full restart.

use std::time::Instant;

use bench::report::restart_point_json;
use palloc::PHeap;
use pmem_sim::{CrashImage, DurabilityDomain, Machine, MachineConfig, PAddr};
use ptm::db::{PtmDb, ReopenReports, DB_HEAP_NAME};
use ptm::log::{committed_marker, TxLog, W_COUNT, W_STATE};
use ptm::{recover_with_options, PtmConfig, RecoverOptions};

/// Per-thread logs in every crafted image (the parallelism ceiling:
/// recovery clamps its worker count to the number of discovered logs).
const LOGS: usize = 8;
/// Repetitions per point; the fastest is reported (restart is a latency
/// measurement — the minimum is the least noisy estimator).
const REPS: usize = 3;
/// Payload value stored in every populated block's first word; the
/// quick-mode first-read guard checks it through the epoch fence.
const CHAIN_MAGIC: u64 = 0xA000_0000;

fn cfg() -> MachineConfig {
    MachineConfig::functional(DurabilityDomain::Adr)
}

/// Craft a crashed image with controlled dirtiness.
///
/// The heap (named so `PtmDb::reopen` finds it) is about one quarter
/// populated with 8-word blocks: even blocks form a chain hanging off
/// root 0 (live — the restart GC must mark them), odd blocks are left
/// unlinked (leaked — the GC must reclaim them). On top of that, `LOGS`
/// redo logs are written with `entries_per_log` committed-but-unretired
/// entries each, targeting per-log scratch blocks, so recovery has
/// `LOGS * entries_per_log` words of replay to do.
fn build_image(pool_words: usize, entries_per_log: usize) -> CrashImage {
    let m = Machine::new(cfg());
    let heap = PHeap::format(&m, DB_HEAP_NAME, pool_words, 8);
    let ptm_cfg = PtmConfig::redo();
    let mut s = m.session(0);

    let block_words = 8usize;
    let nblocks = (pool_words / 4 / (block_words + 2)).max(4);
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        blocks.push(heap.alloc(&mut s, block_words));
    }
    let mut prev: Option<PAddr> = None;
    for (i, &b) in blocks.iter().enumerate() {
        for w in 0..block_words as u64 {
            s.store(b.offset(w), CHAIN_MAGIC + i as u64);
        }
        if i % 2 == 0 {
            // Word 1 of the previous live block points at this one; the
            // conservative mark follows it.
            match prev {
                None => heap.set_root(&mut s, 0, b),
                Some(p) => s.store(p.offset(1), b.0),
            }
            prev = Some(b);
        }
    }
    for &b in &blocks {
        s.persist_range(b, block_words as u64);
    }

    for t in 0..LOGS {
        let log = TxLog::create(&m, t, &ptm_cfg);
        let chunks = entries_per_log.div_ceil(block_words);
        let mut targets = Vec::with_capacity(chunks * block_words);
        for _ in 0..chunks {
            let b = heap.alloc(&mut s, block_words);
            for w in 0..block_words as u64 {
                s.store(b.offset(w), 0);
            }
            s.persist_range(b, block_words as u64);
            for w in 0..block_words as u64 {
                targets.push(b.offset(w));
            }
        }
        for (i, target) in targets.iter().enumerate().take(entries_per_log) {
            let e = log.entry_addr(i);
            log.primary.raw_store(e.word(), target.0);
            log.primary
                .raw_store(e.word() + 1, 7_000_000 + (t * entries_per_log + i) as u64);
            log.primary.persist_line_now(e.line());
        }
        log.primary.raw_store(W_COUNT, entries_per_log as u64);
        log.primary
            .raw_store(W_STATE, committed_marker(entries_per_log as u64));
        log.primary.persist_line_now(0);
    }
    drop(s);
    m.crash(42)
}

/// Reboot + recover + online-GC the image with `workers`, best-of-REPS.
fn measure(image: &CrashImage, workers: usize) -> ReopenReports {
    let mut best: Option<ReopenReports> = None;
    for _ in 0..REPS {
        let (_db, rep) = PtmDb::reopen_with(
            image,
            cfg(),
            PtmConfig::redo(),
            RecoverOptions {
                workers,
                ..RecoverOptions::default()
            },
        );
        if best
            .as_ref()
            .is_none_or(|b| rep.full_restart_ns < b.full_restart_ns)
        {
            best = Some(rep);
        }
    }
    best.unwrap()
}

/// Quick-mode guard 2: reboot once more and serve a read through the
/// online-GC epoch fence *before* joining the sweep. Returns the
/// host-side time to that first read and whether the sweep was still
/// running when the read completed.
fn first_read_through_fence(image: &CrashImage) -> (u64, bool) {
    let t0 = Instant::now();
    let m = Machine::reboot(image, cfg());
    recover_with_options(
        &m,
        RecoverOptions {
            workers: 4,
            ..RecoverOptions::default()
        },
    );
    let pool = m
        .pools()
        .into_iter()
        .find(|p| p.name() == DB_HEAP_NAME)
        .expect("crafted image lost its heap pool");
    let (heap, online) = PHeap::attach_online(pool, 4).expect("heap attach");
    let head = heap.root_raw(0);
    let v = heap.pool().raw_load(head.word());
    assert_eq!(
        v, CHAIN_MAGIC,
        "first read through the epoch fence returned a wrong value"
    );
    let first_read_ns = t0.elapsed().as_nanos() as u64;
    let sweep_still_running = !online.is_finished();
    online.join();
    (first_read_ns, sweep_still_running)
}

fn main() {
    let mut quick = false;
    let mut json = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            other => panic!("unknown flag `{other}` (known: --quick --json)"),
        }
    }
    // Dirtiness entries are per log and clamped per pool (the scratch
    // blocks must fit alongside the population); the heavy cells matter:
    // with ~8 ns/entry of serial replay, the guard cell needs tens of
    // thousands of entries for the parallel pass to amortize its thread
    // spawns. 8192 is the default log capacity — the worst legal case.
    let pools: &[usize] = if quick {
        &[1 << 14, 1 << 18]
    } else {
        &[1 << 16, 1 << 18, 1 << 20]
    };
    let dirt: &[usize] = if quick {
        &[16, 8192]
    } else {
        &[64, 1024, 8192]
    };
    let workers: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };

    if !json {
        println!(
            "pool_words,dirty_entries,workers,recovery_ns,gc_scan_ns,gc_mark_ns,gc_sweep_ns,\
             time_to_first_txn_ns,full_restart_ns"
        );
    }

    // The guard cell: largest pool x heaviest dirtiness in the sweep.
    let (mut guard_serial, mut guard_par) = (0u64, 0u64);
    let guard_pool = *pools.last().unwrap();
    let guard_dirt = *dirt.last().unwrap();
    let mut guard_image = None;

    for &p in pools {
        for &d in dirt {
            // Clamp per-log entries so the scratch blocks fit in half
            // the pool (the other half holds the population + slack).
            let d_eff = d.min(p / (2 * LOGS));
            let image = build_image(p, d_eff);
            for &w in workers {
                let rep = measure(&image, w);
                let dirty = (d_eff * LOGS) as u64;
                if json {
                    let scenario = format!("redo/adr/p{p}/d{dirty}");
                    println!(
                        "{}",
                        restart_point_json(&scenario, p as u64, dirty, w as u64, &rep)
                    );
                } else {
                    println!(
                        "{p},{dirty},{w},{},{},{},{},{},{}",
                        rep.recovery.recovery_ns,
                        rep.gc.gc_scan_ns,
                        rep.gc.gc_mark_ns,
                        rep.gc.gc_sweep_ns,
                        rep.time_to_first_txn_ns,
                        rep.full_restart_ns
                    );
                }
                if p == guard_pool && d == guard_dirt {
                    match w {
                        1 => guard_serial = rep.recovery.recovery_ns.max(1),
                        4 => guard_par = rep.recovery.recovery_ns.max(1),
                        _ => {}
                    }
                }
            }
            if p == guard_pool && d == guard_dirt {
                guard_image = Some(image);
            }
        }
    }

    if quick {
        let image = guard_image.expect("guard cell was swept");
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let gw = cores.min(4);

        // Guard 1: the SLO. Where the host can actually run workers in
        // parallel, recovery with min(4, cores) workers must not be
        // slower than 0.9x serial at the largest quick cell (both
        // best-of-REPS on the same image).
        let guard_g = match gw {
            1 => guard_serial,
            4 => guard_par,
            _ => measure(&image, gw).recovery.recovery_ns.max(1),
        };
        let ratio = guard_serial as f64 / guard_g as f64;
        eprintln!(
            "# restart SLO: serial {guard_serial} ns, {gw}-worker {guard_g} ns \
             (speedup {ratio:.2}x, floor 0.90x, {cores} cores)"
        );
        if guard_g * 9 > guard_serial * 10 {
            eprintln!("# restart SLO VIOLATED: {gw}-worker recovery slower than 0.9x serial");
            std::process::exit(1);
        }

        // Guard 2: absolute overhead bound, meaningful even on one
        // core where guard 1 degenerates: 4 workers may cost thread
        // bookkeeping over serial, never a blow-up.
        eprintln!(
            "# restart overhead: 4-worker {guard_par} ns vs bound {} ns",
            guard_serial * 3 + 2_000_000
        );
        if guard_par > guard_serial * 3 + 2_000_000 {
            eprintln!("# restart SLO VIOLATED: 4-worker recovery overhead blow-up");
            std::process::exit(1);
        }

        // Guard 3: online restart — a read is served behind the epoch
        // fence, and never later than the full restart completes.
        let (first_read_ns, sweep_running) = first_read_through_fence(&image);
        let full = measure(&image, 4).full_restart_ns;
        eprintln!(
            "# first read through epoch fence after {first_read_ns} ns \
             (sweep still running: {sweep_running}; full restart {full} ns)"
        );
        if first_read_ns > full.saturating_mul(4) {
            // A loose sanity bound, not a perf assertion: the first read
            // path must not degenerate into waiting for the whole sweep
            // plus overhead.
            eprintln!("# restart SLO VIOLATED: first read took >4x a full restart");
            std::process::exit(1);
        }
    }
}
