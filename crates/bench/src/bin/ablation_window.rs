//! Methodology validation: sensitivity of results to the bounded-lag
//! virtual-time window. Throughput and commit/abort ratios should be
//! stable across a wide range of window sizes — if they were not, the
//! simulation's conclusions would be artifacts of the executor, not of
//! the modeled machine.

use bench::{emit_point, run_point_with, HarnessOpts};
use pmem_sim::{DurabilityDomain, MediaKind};
use ptm::Algo;
use workloads::driver::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = *opts.threads.iter().max().unwrap_or(&8);
    if !opts.json {
        println!("workload,window_ns,throughput_mops,commit_abort_ratio");
    }
    for name in ["tpcc-hash", "tatp"] {
        for window in [500u64, 1_000, 2_000, 4_000, 8_000] {
            let sc = Scenario::new(
                format!("w{window}"),
                MediaKind::Optane,
                DurabilityDomain::Adr,
                Algo::RedoLazy,
            );
            let mut rc = opts.run_config(threads);
            rc.window_ns = window;
            let r = run_point_with(name, &sc, &rc, opts.quick);
            if opts.json {
                emit_point(&opts, name, &r);
                continue;
            }
            let ratio = r.commit_abort_ratio();
            println!(
                "{},{},{:.4},{}",
                name,
                window,
                r.throughput_mops(),
                if ratio.is_finite() {
                    format!("{ratio:.2}")
                } else {
                    "inf".into()
                }
            );
        }
    }
}
