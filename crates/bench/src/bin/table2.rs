//! Table II: commit/abort ratio for TPCC (Hash Table) with undo logging.

fn main() {
    bench::commit_abort_table(ptm::Algo::UndoEager);
}
