//! Figure 3: throughput vs threads for the six panel workloads, curves
//! {DRAM, Optane} x {ADR, eADR} x {undo, redo}.

use bench::{panel_workloads, run_figure, HarnessOpts};
use workloads::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!(
        "# fig3: {} workloads x 8 scenarios x {:?} threads",
        panel_workloads().len(),
        opts.threads
    );
    run_figure(&panel_workloads(), &Scenario::fig3_grid(), &opts);
}
