//! Tracing-off overhead ablation (PR4 acceptance): btree-insert under
//! Optane/ADR/redo at 1 and 4 threads, flight recorder compiled in but
//! disarmed vs armed.
//!
//! Two claims, both checked here:
//!
//! * **Off cost**: with no sink attached the per-site cost is one relaxed
//!   load at session construction plus a predictable branch per event
//!   site — in *virtual* time the off run is bit-identical to a build
//!   without tracing, so the regression column must be exactly 0%.
//! * **On cost**: even armed, events are stamped with the thread's
//!   existing virtual clock and recorded into a pre-allocated ring —
//!   no virtual-time charge — so the armed run's virtual throughput is
//!   identical at 1 thread. At 4 threads the OS interleaves real
//!   threads differently run to run, so individual runs see (±) several
//!   percent of lock-order noise that has nothing to do with tracing;
//!   each arm reports its best of five runs to damp that, and the 2%
//!   acceptance bound is asserted on the damped figures. (Wall-clock
//!   recording cost exists but is not what the simulator measures.)

use std::sync::Arc;

use bench::HarnessOpts;
use pmem_sim::{DurabilityDomain, MediaKind};
use workloads::driver::RunConfig;
use workloads::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    let sc = Scenario::new(
        "Optane_ADR_R",
        MediaKind::Optane,
        DurabilityDomain::Adr,
        ptm::Algo::RedoLazy,
    );
    if !opts.json {
        println!("workload,threads,mode,throughput_mops,elapsed_virtual_ns,events,regression_pct");
    }
    const RUNS: usize = 5;
    for &threads in &[1usize, 4] {
        let base = opts.run_config(threads);
        let off = (0..RUNS)
            .map(|_| bench::run_point_with("btree-insert", &sc, &base, opts.quick))
            .max_by(|a, b| a.throughput_mops().total_cmp(&b.throughput_mops()))
            .unwrap();

        let mut events = 0u64;
        let on = (0..RUNS)
            .map(|_| {
                let sink = trace::TraceSink::new(trace::TraceSink::DEFAULT_RING_CAPACITY);
                let rc_on = RunConfig {
                    trace: Some(Arc::clone(&sink)),
                    ..base.clone()
                };
                let r = bench::run_point_with("btree-insert", &sc, &rc_on, opts.quick);
                events = sink
                    .threads()
                    .iter()
                    .map(|t| t.events.len() as u64 + t.dropped)
                    .sum();
                r
            })
            .max_by(|a, b| a.throughput_mops().total_cmp(&b.throughput_mops()))
            .unwrap();

        let regression =
            100.0 * (off.throughput_mops() - on.throughput_mops()) / off.throughput_mops();
        if opts.json {
            println!(
                "{{\"workload\":\"btree-insert\",\"ablation\":\"trace_overhead\",\
                 \"threads\":{threads},\"off_mops\":{:.6},\"on_mops\":{:.6},\
                 \"off_elapsed_virtual_ns\":{},\"on_elapsed_virtual_ns\":{},\
                 \"events\":{events},\"regression_pct\":{regression:.3}}}",
                off.throughput_mops(),
                on.throughput_mops(),
                off.elapsed_virtual_ns,
                on.elapsed_virtual_ns
            );
        } else {
            println!(
                "btree-insert,{threads},off,{:.4},{},0,",
                off.throughput_mops(),
                off.elapsed_virtual_ns
            );
            println!(
                "btree-insert,{threads},on,{:.4},{},{events},{regression:.3}",
                on.throughput_mops(),
                on.elapsed_virtual_ns
            );
        }
        assert!(
            regression.abs() <= 2.0,
            "tracing regression {regression:.3}% exceeds the 2% acceptance bound"
        );
    }
}
