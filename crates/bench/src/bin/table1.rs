//! Table I: commit/abort ratio for TPCC (Hash Table) with redo logging,
//! rows {DRAM, Optane} x {ADR, eADR}, columns = thread counts.

fn main() {
    bench::commit_abort_table(ptm::Algo::RedoLazy);
}
