//! Ablation: naive vs write-combining commit pipeline.
//!
//! The write-combining pipeline (see `ptm::umap::LineSet` and
//! `PtmConfig::write_combining`) collects every durability obligation of
//! a fence window, dedupes at cache-line granularity and drains the
//! unique lines through the bank-interleaved `MemSession::clwb_batch`.
//! This binary measures the gain over the naive per-entry flush loop on
//! write-hot workloads across {redo, undo} × {ADR, eADR, PDRAM,
//! PDRAM-Lite}. Under eADR-class domains both arms must be identical
//! (flushes are free no-ops there).
//!
//! A built-in regression guard (always on, including `--quick`) fails
//! the run if the combined pipeline stops eliding flushes on the redo
//! ADR workload — the planner's whole point.

use bench::{emit_point, run_point_with, HarnessOpts};
use pmem_sim::{DurabilityDomain, MediaKind};
use ptm::Algo;
use workloads::driver::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    if !opts.json {
        println!(
            "workload,algo,domain,threads,naive_mops,combined_mops,gain_pct,\
             naive_clwbs,combined_clwbs,flushes_elided,lines_planned"
        );
    }
    let domains = [
        ("adr", DurabilityDomain::Adr),
        ("eadr", DurabilityDomain::Eadr),
        ("pdram", DurabilityDomain::Pdram),
        ("pdram-lite", DurabilityDomain::PdramLite),
    ];
    let mut guard_ok = false;
    let mut guard_checked = false;
    for name in ["btree-insert", "tpcc-hash"] {
        for (algo_label, algo) in [("redo", Algo::RedoLazy), ("undo", Algo::UndoEager)] {
            for (domain_label, domain) in domains {
                for &threads in &opts.threads {
                    let sc = Scenario::new(
                        format!("{domain_label}_{}", algo.label()),
                        MediaKind::Optane,
                        domain,
                        algo,
                    );
                    let mut rc = opts.run_config(threads);
                    rc.ptm.write_combining = false;
                    let naive = run_point_with(name, &sc, &rc, opts.quick);
                    rc.ptm.write_combining = true;
                    let combined = run_point_with(name, &sc, &rc, opts.quick);
                    // Flush-count regression guard: the first redo ADR
                    // point must elide a nonzero share of flushes.
                    if !guard_checked && algo == Algo::RedoLazy && domain == DurabilityDomain::Adr {
                        guard_checked = true;
                        guard_ok = combined.ptm.flushes_elided > 0;
                    }
                    if opts.json {
                        emit_point(
                            &opts,
                            &format!("{name}-{algo_label}-{domain_label}-naive"),
                            &naive,
                        );
                        emit_point(
                            &opts,
                            &format!("{name}-{algo_label}-{domain_label}-combined"),
                            &combined,
                        );
                        continue;
                    }
                    println!(
                        "{},{},{},{},{:.4},{:.4},{:.1},{},{},{},{}",
                        name,
                        algo_label,
                        domain_label,
                        threads,
                        naive.throughput_mops(),
                        combined.throughput_mops(),
                        (combined.throughput_mops() / naive.throughput_mops() - 1.0) * 100.0,
                        naive.mem.clwbs,
                        combined.mem.clwbs,
                        combined.ptm.flushes_elided,
                        combined.ptm.lines_planned,
                    );
                }
            }
        }
    }
    if !guard_ok {
        eprintln!(
            "REGRESSION: write combining elided zero flushes on the redo ADR \
             workload — the planner is not deduplicating"
        );
        std::process::exit(1);
    }
}
