//! The paper's §V future-work question: is HTM a viable strategy for
//! accelerating PTM? Hardware transactions (TSX-style) are incompatible
//! with ADR (a `clwb` aborts them) but compose with eADR and PDRAM, where
//! commit-time cache visibility *is* durability. This ablation compares
//! the hybrid (HTM-first, software fallback) against pure software under
//! each compatible domain, and confirms the no-op under ADR.

use bench::{emit_point, run_point_with, HarnessOpts};
use pmem_sim::{DurabilityDomain, MediaKind};
use ptm::Algo;
use workloads::driver::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    if !opts.json {
        println!("workload,domain,threads,stm_mops,hybrid_mops,htm_commit_pct,speedup_pct");
    }
    for name in ["tatp", "tpcc-hash", "btree-mixed"] {
        for (domain, dname) in [
            (DurabilityDomain::Eadr, "eADR"),
            (DurabilityDomain::Pdram, "PDRAM"),
            (DurabilityDomain::Adr, "ADR"),
        ] {
            for &threads in &opts.threads {
                let sc = Scenario::new(dname, MediaKind::Optane, domain, Algo::RedoLazy);
                let mut rc = opts.run_config(threads);
                rc.ptm.htm_retries = 0;
                let stm = run_point_with(name, &sc, &rc, opts.quick);
                rc.ptm.htm_retries = 4;
                let hybrid = run_point_with(name, &sc, &rc, opts.quick);
                if opts.json {
                    emit_point(&opts, &format!("{name}-stm"), &stm);
                    emit_point(&opts, &format!("{name}-hybrid"), &hybrid);
                    continue;
                }
                let htm_pct =
                    100.0 * hybrid.ptm.htm_commits as f64 / hybrid.ptm.commits.max(1) as f64;
                println!(
                    "{},{},{},{:.4},{:.4},{:.1},{:.1}",
                    name,
                    dname,
                    threads,
                    stm.throughput_mops(),
                    hybrid.throughput_mops(),
                    htm_pct,
                    (hybrid.throughput_mops() / stm.throughput_mops() - 1.0) * 100.0
                );
            }
        }
    }
}
