//! The paper's §III-C explanatory measurement: performance counters (L3
//! hits/misses, lines written to DRAM vs Optane, WPQ stalls, fence waits)
//! per scenario, for one workload at one thread count.

use bench::{emit_point, run_point, HarnessOpts};
use workloads::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = *opts.threads.iter().max().unwrap_or(&8);
    if !opts.json {
        println!(
            "workload,scenario,threads,mops,l3_hit_pct,optane_lines_written,dram_lines_written,\
             clwbs,sfences,fence_wait_us,wpq_stall_us,evictions"
        );
    }
    for name in ["tpcc-hash", "tatp"] {
        for sc in Scenario::fig3_grid() {
            let r = run_point(name, &sc, &opts, threads);
            if opts.json {
                emit_point(&opts, name, &r);
                continue;
            }
            let total = (r.mem.l3_hits + r.mem.l3_misses).max(1);
            println!(
                "{},{},{},{:.4},{:.1},{},{},{},{},{},{},{}",
                name,
                r.label,
                threads,
                r.throughput_mops(),
                100.0 * r.mem.l3_hits as f64 / total as f64,
                r.mem.optane_lines_written,
                r.mem.dram_lines_written,
                r.mem.clwbs,
                r.mem.sfences,
                r.mem.fence_wait_ns / 1_000,
                r.mem.wpq_stall_ns / 1_000,
                r.mem.evictions,
            );
        }
    }
}
