//! Ablation 5 (DESIGN.md §5): orec table geometry. Fewer stripes means
//! more false conflicts; sweep the table size and report throughput and
//! abort rates.

use bench::{emit_point, run_point_with, HarnessOpts};
use pmem_sim::{DurabilityDomain, MediaKind};
use ptm::Algo;
use workloads::driver::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = *opts.threads.iter().max().unwrap_or(&4);
    if !opts.json {
        println!("workload,orecs,throughput_mops,commit_abort_ratio");
    }
    for name in ["tpcc-hash", "btree-mixed"] {
        for shift in [8usize, 12, 16, 20] {
            let sc = Scenario::new(
                format!("orecs{}", 1 << shift),
                MediaKind::Optane,
                DurabilityDomain::Adr,
                Algo::RedoLazy,
            );
            let mut rc = opts.run_config(threads);
            rc.ptm.orec_count = 1 << shift;
            let r = run_point_with(name, &sc, &rc, opts.quick);
            if opts.json {
                emit_point(&opts, name, &r);
                continue;
            }
            let ratio = r.commit_abort_ratio();
            println!(
                "{},{},{:.4},{}",
                name,
                1 << shift,
                r.throughput_mops(),
                if ratio.is_finite() {
                    format!("{ratio:.2}")
                } else {
                    "inf".into()
                }
            );
        }
    }
}
