//! Ablation 2 (DESIGN.md §5, paper §III-B): incremental vs batched redo
//! log flushing. The paper found no noticeable difference; this binary
//! regenerates that comparison.

use bench::{emit_point, run_point_with, HarnessOpts};
use pmem_sim::{DurabilityDomain, MediaKind};
use ptm::{Algo, FlushTiming};
use workloads::driver::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    if !opts.json {
        println!("workload,threads,incremental_mops,batched_mops,delta_pct");
    }
    for name in ["tpcc-hash", "tpcc-btree", "btree-insert"] {
        for &threads in &opts.threads {
            let sc = Scenario::new(
                "adr_R",
                MediaKind::Optane,
                DurabilityDomain::Adr,
                Algo::RedoLazy,
            );
            let mut rc = opts.run_config(threads);
            rc.ptm.flush_timing = FlushTiming::Incremental;
            let inc = run_point_with(name, &sc, &rc, opts.quick);
            rc.ptm.flush_timing = FlushTiming::Batched;
            let bat = run_point_with(name, &sc, &rc, opts.quick);
            if opts.json {
                emit_point(&opts, &format!("{name}-incremental"), &inc);
                emit_point(&opts, &format!("{name}-batched"), &bat);
                continue;
            }
            println!(
                "{},{},{:.4},{:.4},{:.1}",
                name,
                threads,
                inc.throughput_mops(),
                bat.throughput_mops(),
                (bat.throughput_mops() / inc.throughput_mops() - 1.0) * 100.0
            );
        }
    }
}
