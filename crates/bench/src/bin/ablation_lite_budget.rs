//! Ablation 4 (DESIGN.md §5): PDRAM-Lite's DRAM log budget. The paper
//! argues a handful of pages per thread suffices (Vacation <= 37 lines,
//! TPCC <= 36); sweep the budget and watch for the knee.

use bench::{emit_point, run_point_with, HarnessOpts};
use pmem_sim::{DurabilityDomain, MediaKind};
use ptm::Algo;
use workloads::driver::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    let threads = *opts.threads.iter().max().unwrap_or(&4);
    if !opts.json {
        println!("workload,lite_entries,throughput_mops");
    }
    for name in ["tpcc-hash", "tatp", "vacation-low"] {
        for lite_entries in [8usize, 16, 32, 64, 128, 512] {
            let sc = Scenario::new(
                format!("lite{lite_entries}"),
                MediaKind::Optane,
                DurabilityDomain::PdramLite,
                Algo::RedoLazy,
            );
            let mut rc = opts.run_config(threads);
            rc.ptm.lite_log_entries = lite_entries;
            let r = run_point_with(name, &sc, &rc, opts.quick);
            if opts.json {
                emit_point(&opts, name, &r);
                continue;
            }
            println!("{},{},{:.4}", name, lite_entries, r.throughput_mops());
        }
    }
}
