//! shard_scaling — aggregate throughput of the sharded multi-pool engine.
//!
//! Sweeps shard counts 1 → 16 on the open-loop sharded KV workload
//! (Zipfian key population, bursty arrivals; see `workloads::sharded`)
//! under ADR/Optane, with cross-transaction group commit off and on at
//! each point. Reports aggregate Mops/s (total ops over the largest
//! shard makespan), sojourn p99 (request arrival → completion), fences
//! per committed transaction and the worst per-shard WPQ stall. The full
//! run adds a TPCC (hash index) curve with warehouse-affine routing.
//!
//! Two regression guards are always on (including `--quick`) and fail
//! the run with a nonzero exit:
//!
//! * **scaling** — aggregate ops/s at the largest shard count must be
//!   more than `shards/2`× the 1-shard baseline (the full sweep hence
//!   demands > 4× at 8 shards, the ISSUE acceptance bar);
//! * **group commit** — at ≥ 4 threads per shard the grouped arm must
//!   retire fewer fences per commit than the plain arm.
//!
//! The run then sweeps the cross-shard transfer workload over
//! `--cross-shard-frac` at the largest configured shard count, under
//! both ADR and eADR, reporting the single-shard-vs-2PC throughput and
//! fence-cost curve (EXPERIMENTS.md §"Cross-shard 2PC"). A third guard
//! rides along whenever the frac list contains both 0 and 0.1:
//!
//! * **2PC cost** — mean transaction latency at frac=0.1 under ADR must
//!   stay ≤ 2.5× the all-single-shard (frac=0) latency.
//!
//! Flags: `--quick`, `--json`, `--shards a,b,c`,
//! `--threads-per-shard N`, `--ops-per-shard N`, `--seed S`,
//! `--cross-shard-frac a,b,c` (default 0,0.01,0.1,0.5; quick 0,0.1).

use bench::report;
use pmem_sim::DurabilityDomain;
use workloads::{IndexKind, ShardedRunConfig, ShardedRunResult, StreamConfig};

struct Opts {
    quick: bool,
    json: bool,
    shards: Vec<usize>,
    threads_per_shard: usize,
    ops_per_shard: u64,
    seed: u64,
    cross_frac: Vec<f64>,
}

fn parse_opts() -> Opts {
    let mut quick = false;
    let mut json = false;
    let mut shards: Option<Vec<usize>> = None;
    let mut threads_per_shard = 4usize;
    let mut ops_per_shard: Option<u64> = None;
    let mut seed = 42u64;
    let mut cross_frac: Option<Vec<f64>> = None;
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--shards" => {
                shards = Some(
                    next(&mut args, "--shards")
                        .split(',')
                        .map(|s| s.parse().expect("bad shard count"))
                        .collect(),
                );
            }
            "--threads-per-shard" => {
                threads_per_shard = next(&mut args, "--threads-per-shard")
                    .parse()
                    .expect("bad thread count");
            }
            "--ops-per-shard" => {
                ops_per_shard = Some(
                    next(&mut args, "--ops-per-shard")
                        .parse()
                        .expect("bad op count"),
                );
            }
            "--seed" => seed = next(&mut args, "--seed").parse().expect("bad seed"),
            "--cross-shard-frac" => {
                cross_frac = Some(
                    next(&mut args, "--cross-shard-frac")
                        .split(',')
                        .map(|s| {
                            let f: f64 = s.parse().expect("bad fraction");
                            assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
                            f
                        })
                        .collect(),
                );
            }
            other => panic!(
                "unknown flag `{other}` (known: --quick --json --shards \
                 --threads-per-shard --ops-per-shard --seed --cross-shard-frac)"
            ),
        }
    }
    let default_shards = if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let default_frac = if quick {
        vec![0.0, 0.1]
    } else {
        vec![0.0, 0.01, 0.1, 0.5]
    };
    Opts {
        quick,
        json,
        shards: shards.unwrap_or(default_shards),
        threads_per_shard,
        ops_per_shard: ops_per_shard.unwrap_or(if quick { 250 } else { 2_000 }),
        seed,
        cross_frac: cross_frac.unwrap_or(default_frac),
    }
}

/// One measurement point. The stream size scales with the shard count
/// (open-loop offered load per shard stays constant) and the arrival
/// gap is kept small so every point is saturated — the curve then
/// measures service capacity, not the client population.
fn point(opts: &Opts, shards: usize, group_commit: bool) -> ShardedRunConfig {
    let mut rc = ShardedRunConfig {
        shards,
        threads_per_shard: opts.threads_per_shard,
        ..ShardedRunConfig::default()
    };
    rc.ptm.group_commit = group_commit;
    rc.stream = StreamConfig {
        total_ops: opts.ops_per_shard * shards as u64,
        keys: 1 << 14,
        mean_gap_ns: 20,
        seed: opts.seed,
        ..StreamConfig::default()
    };
    rc
}

fn emit(opts: &Opts, workload: &str, r: &ShardedRunResult, group_commit: bool) {
    if opts.json {
        println!("{}", report::sharded_point_json(workload, r));
        return;
    }
    let max_wpq_stall = r
        .per_shard_mem
        .iter()
        .map(|m| m.wpq_stall_ns)
        .max()
        .unwrap_or(0);
    println!(
        "{},{},{},{},{},{:.4},{},{:.3},{},{},{}",
        workload,
        r.shards,
        r.threads_per_shard,
        group_commit as u8,
        r.ops,
        r.throughput_mops(),
        r.sojourn.summary().p99,
        r.sfences_per_commit(),
        r.ptm.sfences_elided,
        r.ptm.group_commit_windows,
        max_wpq_stall
    );
}

fn main() {
    let opts = parse_opts();
    if !opts.json {
        println!(
            "workload,shards,threads_per_shard,group_commit,ops,throughput_mops,\
             sojourn_p99_ns,sfences_per_commit,sfences_elided,group_commit_windows,\
             max_shard_wpq_stall_ns"
        );
    }

    let mut kv_plain: Vec<(usize, f64)> = Vec::new();
    let mut gc_guard: Option<(f64, f64)> = None;
    for &shards in &opts.shards {
        let plain = workloads::run_sharded_kv(&point(&opts, shards, false));
        let grouped = workloads::run_sharded_kv(&point(&opts, shards, true));
        kv_plain.push((shards, plain.throughput_mops()));
        if gc_guard.is_none() && opts.threads_per_shard >= 4 {
            gc_guard = Some((plain.sfences_per_commit(), grouped.sfences_per_commit()));
        }
        emit(&opts, "sharded-kv", &plain, false);
        emit(&opts, "sharded-kv", &grouped, true);
    }

    if !opts.quick {
        for &shards in &opts.shards {
            let mut rc = point(&opts, shards, false);
            // Warehouse-affine routing: one warehouse per shard-thread.
            rc.stream.keys = (shards * opts.threads_per_shard) as u64;
            let r = workloads::run_sharded_tpcc(&rc, IndexKind::Hash);
            emit(&opts, "sharded-tpcc-hash", &r, false);
        }
    }

    // Cross-shard 2PC cost curve: the transfer/multi-get workload at
    // the largest configured shard count, swept over the cross-shard
    // fraction under ADR and eADR. The eADR arm shows the prepare-fence
    // collapse the paper predicts for flush-free domains.
    let xshard_shards = opts.shards.iter().copied().max().unwrap_or(1);
    let mut adr_latency: Vec<(f64, f64)> = Vec::new();
    if xshard_shards > 1 {
        for &(domain, dom_label) in &[
            (DurabilityDomain::Adr, "adr"),
            (DurabilityDomain::Eadr, "eadr"),
        ] {
            for &frac in &opts.cross_frac {
                let mut rc = point(&opts, xshard_shards, false);
                rc.domain = domain;
                rc.stream.keys = 1 << 12;
                let r = workloads::run_cross_shard_transfer(&rc, frac);
                if domain == DurabilityDomain::Adr {
                    adr_latency.push((frac, r.sojourn.summary().mean_ns));
                }
                emit(&opts, &format!("xshard-{dom_label}-f{frac:.2}"), &r, false);
            }
        }
    }

    let mut failed = false;
    let base = kv_plain.iter().find(|(s, _)| *s == 1).map(|(_, t)| *t);
    let top = kv_plain.iter().max_by_key(|(s, _)| *s);
    if let (Some(base), Some(&(shards, t))) = (base, top) {
        if shards > 1 {
            let speedup = t / base;
            let bar = shards as f64 / 2.0;
            if speedup <= bar {
                failed = true;
                eprintln!(
                    "REGRESSION: sharded-kv aggregate throughput at {shards} shards is only \
                     {speedup:.2}x the 1-shard baseline (needs > {bar:.1}x)"
                );
            }
        }
    }
    let at = |fs: &[(f64, f64)], want: f64| {
        fs.iter()
            .find(|(f, _)| (f - want).abs() < 1e-9)
            .map(|(_, m)| *m)
    };
    if let (Some(base), Some(mixed)) = (at(&adr_latency, 0.0), at(&adr_latency, 0.1)) {
        let ratio = mixed / base.max(1e-9);
        if ratio > 2.5 {
            failed = true;
            eprintln!(
                "REGRESSION: cross-shard mean latency at frac=0.1 under ADR is {ratio:.2}x \
                 the all-single-shard baseline (needs <= 2.5x)"
            );
        }
    }
    if let Some((plain, grouped)) = gc_guard {
        if grouped >= plain {
            failed = true;
            eprintln!(
                "REGRESSION: group commit does not reduce fences per commit at \
                 {} threads/shard ({grouped:.3} vs {plain:.3})",
                opts.threads_per_shard
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
