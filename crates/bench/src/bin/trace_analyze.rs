//! Flight-recorder analysis: prove the trace is a faithful account of a
//! run, then mine it for the structures the counters cannot show.
//!
//! Two modes:
//!
//! * **Self-run** (default): run tpcc-hash under Optane/ADR/redo with the
//!   recorder attached (4 threads, a deliberately small WPQ so stall
//!   intervals appear), then cross-check every trace-derived total
//!   against the live `PtmStats`/`MachineStats` counters. Any divergence
//!   on a lossless trace is a bug and exits nonzero.
//! * **`--file <dump>`**: load a binary dump written by
//!   `phase_profile --trace` (or any harness run), cross-check against
//!   the counter totals embedded in the dump, and structurally validate
//!   the sibling `<dump>.json` Chrome trace if present.
//!
//! Both modes then report the orec abort-attribution heatmap (top-10
//! contended orecs with per-cause breakdown), the WPQ occupancy timeline
//! with merged stall intervals, and per-fence-window flush counts.
//! `--json` emits the same summary as a single JSON object.

use std::process::ExitCode;
use std::sync::Arc;

use bench::trace_out::expected_totals;
use pmem_sim::{DurabilityDomain, LatencyModel, MediaKind};
use trace::analyze::{
    abort_heatmap, crosscheck, fence_windows, wpq_timeline, TraceTotals, WpqTimeline,
};
use trace::export::{read_binary, validate_json_structure, ExpectedTotals};
use trace::{AbortCause, ThreadTrace, TraceSink};
use workloads::driver::RunConfig;
use workloads::Scenario;

struct Opts {
    quick: bool,
    json: bool,
    file: Option<String>,
    threads: usize,
    ops: u64,
    /// Treat ring-overwrite loss as a failure: any dropped events exit
    /// nonzero instead of silently downgrading totals to lower bounds.
    strict: bool,
}

fn parse_args() -> Opts {
    let mut o = Opts {
        quick: false,
        json: false,
        file: None,
        threads: 4,
        ops: 1_500,
        strict: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                o.quick = true;
                o.ops = 300;
            }
            "--json" => o.json = true,
            "--strict" => o.strict = true,
            "--file" => o.file = Some(args.next().expect("--file needs a dump path")),
            "--threads" => {
                o.threads = args
                    .next()
                    .expect("--threads needs a number")
                    .parse()
                    .expect("bad thread count");
            }
            "--ops" => {
                o.ops = args
                    .next()
                    .expect("--ops needs a number")
                    .parse()
                    .expect("bad op count");
            }
            other => {
                panic!(
                    "unknown flag `{other}` \
                     (known: --quick --threads --ops --json --file --strict)"
                )
            }
        }
    }
    o
}

/// Everything the report needs, regardless of where the trace came from.
struct Analysis {
    mode: String,
    threads: Vec<ThreadTrace>,
    dropped: u64,
    derived: TraceTotals,
    expected: ExpectedTotals,
    divergences: Vec<String>,
    json_check: Option<Result<(), String>>,
}

fn analyze_self_run(o: &Opts) -> Analysis {
    // Size the per-thread ring to the run so the trace is lossless and
    // the cross-check can demand exact equality: tpcc-hash transactions
    // record a few hundred events each (reads, writes, flushes, WPQ
    // acceptances), so 512 events/op is comfortable headroom.
    let ring_cap = (o.ops as usize * 512).next_power_of_two();
    let sink = TraceSink::new(ring_cap);
    let sc = Scenario::new(
        "Optane_ADR_R",
        MediaKind::Optane,
        DurabilityDomain::Adr,
        ptm::Algo::RedoLazy,
    );
    // A tiny WPQ makes the backlog bound reachable at bench scale, so the
    // stall-interval reconstruction has real intervals to find.
    let model = LatencyModel {
        wpq_lines: 4,
        ..LatencyModel::default()
    };
    let rc = RunConfig {
        threads: o.threads,
        ops_per_thread: o.ops,
        model,
        trace: Some(Arc::clone(&sink)),
        ..RunConfig::default()
    };
    let r = bench::run_point_with("tpcc-hash", &sc, &rc, o.quick);
    let expected = expected_totals(&r);
    let threads = sink.threads();
    let derived = TraceTotals::from_events(&trace::merge_threads(&threads));
    let dropped = sink.dropped_events();
    let divergences = if dropped == 0 {
        crosscheck(&derived, &expected)
    } else {
        Vec::new() // lossy trace: equality is not expected
    };
    Analysis {
        mode: format!("self-run tpcc-hash {} x{}", sc.label, o.threads),
        threads,
        dropped,
        derived,
        expected,
        divergences,
        json_check: None,
    }
}

fn analyze_file(path: &str) -> Analysis {
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let dump = read_binary(&bytes).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
    let derived = TraceTotals::from_events(&dump.merged());
    let dropped = dump.dropped_events();
    let divergences = if dropped == 0 {
        crosscheck(&derived, &dump.expected)
    } else {
        Vec::new()
    };
    let sibling = format!("{path}.json");
    let json_check = std::fs::read_to_string(&sibling)
        .ok()
        .map(|s| validate_json_structure(&s));
    Analysis {
        mode: format!("file {path}"),
        threads: dump.threads,
        dropped,
        derived,
        expected: dump.expected,
        divergences,
        json_check,
    }
}

fn print_text(a: &Analysis, heat: &[trace::analyze::OrecAborts], wpq: &WpqTimeline) {
    let events: u64 = a.threads.iter().map(|t| t.events.len() as u64).sum();
    println!("# trace_analyze: {}", a.mode);
    println!(
        "events={} threads={} dropped_events={}",
        events,
        a.threads.len(),
        a.dropped
    );
    if a.dropped > 0 {
        // Ring-overwrite loss is a first-class signal: name the lossy
        // threads so the operator can resize their rings.
        println!("\n## ring loss (per thread)");
        for t in a.threads.iter().filter(|t| t.dropped > 0) {
            let kept = t.events.len() as u64;
            println!(
                "tid={} dropped={} kept={} loss={:.1}%",
                t.tid,
                t.dropped,
                kept,
                100.0 * t.dropped as f64 / (t.dropped + kept).max(1) as f64
            );
        }
    }

    println!("\n## counter cross-check (trace-derived vs live counters)");
    if a.dropped > 0 {
        println!(
            "SKIPPED: {} events dropped (ring overflow) — all derived totals, \
             heatmaps and timelines below are LOWER BOUNDS over a suffix of the run",
            a.dropped
        );
    } else if a.divergences.is_empty() {
        println!(
            "OK: all 15 totals match exactly (commits={} aborts={} clwbs={} sfences={})",
            a.derived.commits, a.derived.aborts, a.derived.clwbs, a.derived.sfences
        );
    } else {
        for d in &a.divergences {
            println!("DIVERGENT {d}");
        }
    }
    if let Some(check) = &a.json_check {
        match check {
            Ok(()) => println!("chrome JSON sibling: structurally valid"),
            Err(e) => println!("chrome JSON sibling: INVALID ({e})"),
        }
    }

    let bound = if a.dropped > 0 { " [lower bound]" } else { "" };
    println!(
        "\n## orec abort heatmap (top-{}, cause breakdown){bound}",
        heat.len()
    );
    println!("orec,total,read_locked,read_version,acquire,validation");
    for h in heat {
        println!(
            "{},{},{},{},{},{}",
            h.orec,
            h.total,
            h.by_cause[AbortCause::ReadLocked as usize],
            h.by_cause[AbortCause::ReadVersion as usize],
            h.by_cause[AbortCause::Acquire as usize],
            h.by_cause[AbortCause::Validation as usize],
        );
    }
    if heat.is_empty() {
        println!("(no orec-attributable aborts)");
    }

    println!("\n## WPQ occupancy timeline{bound}");
    println!(
        "samples={} max_backlog_ns={} total_stall_ns={} stall_intervals={}",
        wpq.samples.len(),
        wpq.max_backlog_ns,
        wpq.total_stall_ns,
        wpq.stalls.len()
    );
    for s in wpq.stalls.iter().take(10) {
        println!(
            "stall [{} .. {}] span_ns={} events={} stall_ns={}",
            s.start,
            s.end,
            s.end - s.start,
            s.events,
            s.stall_ns
        );
    }

    let windows = fence_windows(&a.threads);
    println!("\n## fence windows{bound}");
    if windows.is_empty() {
        println!("windows=0 (no sfence events — eADR or untraced run)");
    } else {
        let total_clwbs: u64 = windows.iter().map(|w| w.clwbs).sum();
        let waited = windows.iter().filter(|w| w.wait_ns > 0).count();
        println!(
            "windows={} clwbs_per_window_mean={:.2} windows_with_wait={} max_window_clwbs={}",
            windows.len(),
            total_clwbs as f64 / windows.len() as f64,
            waited,
            windows.iter().map(|w| w.clwbs).max().unwrap_or(0)
        );
    }
}

fn print_json(a: &Analysis, heat: &[trace::analyze::OrecAborts], wpq: &WpqTimeline) {
    let events: u64 = a.threads.iter().map(|t| t.events.len() as u64).sum();
    let windows = fence_windows(&a.threads);
    let mut out = String::with_capacity(1024);
    out.push('{');
    out.push_str(&format!(
        "\"schema_version\":{},",
        bench::report::SCHEMA_VERSION
    ));
    out.push_str(&format!("\"mode\":{:?}", a.mode));
    out.push_str(&format!(
        ",\"events\":{events},\"threads\":{},\"dropped_events\":{},\"lower_bounds\":{}",
        a.threads.len(),
        a.dropped,
        a.dropped > 0
    ));
    out.push_str(",\"dropped_per_thread\":[");
    let mut first = true;
    for t in a.threads.iter().filter(|t| t.dropped > 0) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{{\"tid\":{},\"dropped\":{}}}", t.tid, t.dropped));
    }
    out.push(']');
    out.push_str(&format!(
        ",\"crosscheck\":{{\"checked\":{},\"divergences\":[",
        a.dropped == 0
    ));
    for (i, d) in a.divergences.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{d:?}"));
    }
    out.push_str("]}");
    out.push_str(",\"totals\":{");
    for (i, (name, v)) in a.expected.fields().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{v}"));
    }
    out.push('}');
    out.push_str(",\"heatmap\":[");
    for (i, h) in heat.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"orec\":{},\"total\":{},\"read_locked\":{},\"read_version\":{},\"acquire\":{},\"validation\":{}}}",
            h.orec,
            h.total,
            h.by_cause[AbortCause::ReadLocked as usize],
            h.by_cause[AbortCause::ReadVersion as usize],
            h.by_cause[AbortCause::Acquire as usize],
            h.by_cause[AbortCause::Validation as usize],
        ));
    }
    out.push(']');
    out.push_str(&format!(
        ",\"wpq\":{{\"samples\":{},\"max_backlog_ns\":{},\"total_stall_ns\":{},\"stall_intervals\":[",
        wpq.samples.len(),
        wpq.max_backlog_ns,
        wpq.total_stall_ns
    ));
    for (i, s) in wpq.stalls.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"start\":{},\"end\":{},\"events\":{},\"stall_ns\":{}}}",
            s.start, s.end, s.events, s.stall_ns
        ));
    }
    out.push_str("]}");
    out.push_str(&format!(",\"fence_windows\":{}", windows.len()));
    out.push('}');
    println!("{out}");
}

fn main() -> ExitCode {
    let o = parse_args();
    let a = match &o.file {
        Some(path) => analyze_file(path),
        None => analyze_self_run(&o),
    };
    let merged = trace::merge_threads(&a.threads);
    let heat = abort_heatmap(&merged, 10);
    let wpq = wpq_timeline(&merged);

    if o.json {
        print_json(&a, &heat, &wpq);
    } else {
        print_text(&a, &heat, &wpq);
    }

    let json_bad = matches!(&a.json_check, Some(Err(_)));
    if !a.divergences.is_empty() || json_bad {
        eprintln!("trace_analyze: FAILED (divergences or invalid chrome JSON)");
        return ExitCode::FAILURE;
    }
    if o.strict && a.dropped > 0 {
        eprintln!(
            "trace_analyze: FAILED (--strict: {} events dropped by ring overwrite)",
            a.dropped
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
