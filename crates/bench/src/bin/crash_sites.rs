//! crash_sites — deterministic crash-site enumeration sweep.
//!
//! Enumerates every persistence-relevant event of a single-threaded bank
//! transfer workload and crashes at each one (strided above
//! `--max-sites`), across {algorithm × durability domain × adversary
//! policy}, then recovers and checks invariants (committed-prefix
//! equality, allocator/GC consistency, recovery idempotence). See
//! EXPERIMENTS.md §"Crash-site enumeration".
//!
//! Flags:
//!
//! * `--quick` — bounded smoke sweep (12 sites per case);
//! * `--max-sites N` — stride the sweep down to ≤ N sites per case;
//! * `--seed S` — workload/adversary seed (default 42);
//! * `--workload bank|group|transfer` — single-threaded bank transfers
//!   (default), the two-thread group-commit window workload (crashes
//!   inside an open fence window must never tear the joined
//!   transactions), or the cross-shard 2PC transfer workload (one
//!   global site numbering across all shard machines; crashes anywhere
//!   in the prepare/decide/commit window must leave transfers atomic);
//! * `--shards N` — for `bank`/`group`: sweep N shards' logs
//!   independently, each under its own derived seed (shard 0 keeps the
//!   base seed, so `--shards 1` is bit-identical to the unsharded
//!   sweep); for `transfer`: the shard count of the one sharded engine
//!   the sweep runs 2PC over;
//! * `--workers N` — recovery (and GC) worker threads used when
//!   rebooting from each crash image (replay mode prints the recovered
//!   state digest, so two replays at different worker counts make a
//!   digest-equality check);
//! * `--json` — one JSON object per case (JSON Lines) instead of CSV;
//! * `--skip-undo-rollback`, `--skip-redo-replay` — deliberately break
//!   recovery to demonstrate the sweep catches it (must exit nonzero);
//! * replay mode: `--site N --algo redo|undo --domain
//!   adr|eadr|pdram|pdram-lite --policy per-word|all-old|all-new|per-line|biased:P`
//!   re-runs one exact crash from a `CRASH-REPRO` line.
//!
//! Violations print their reproducer line to stderr; the process exits
//! nonzero if any sweep case is violated.

use pmem_sim::AdversaryPolicy;
use ptm::crash_harness::{
    algo_name, count_sites, count_sites_sharded, default_cases, domain_name, parse_algo,
    parse_domain, run_site, run_site_sharded, sweep_case, sweep_case_sharded, BankTransfers,
    CrashWorkload, GroupWindowBank, ShardedTransfers, SweepCase, SweepOptions,
};
use ptm::{Algo, RecoverOptions};

struct Opts {
    quick: bool,
    json: bool,
    max_sites: Option<u64>,
    seed: u64,
    workload: String,
    shards: u64,
    recover: RecoverOptions,
    /// Replay mode: (site, algo, domain, policy).
    replay: Option<SweepCase>,
    replay_site: Option<u64>,
}

/// Shard `i`'s sweep seed: the same golden-ratio derivation the sharded
/// engine uses, anchored so shard 0 keeps the base seed.
fn shard_seed(seed: u64, shard: u64) -> u64 {
    seed ^ 0x9E3779B97F4A7C15u64.wrapping_mul(shard)
}

fn make_workload(name: &str) -> Box<dyn CrashWorkload> {
    match name {
        "bank" => Box::new(BankTransfers::default()),
        "group" => Box::new(GroupWindowBank::default()),
        other => panic!("unknown workload `{other}` (known: bank group)"),
    }
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        json: false,
        max_sites: None,
        seed: 42,
        workload: "bank".to_string(),
        shards: 1,
        recover: RecoverOptions::default(),
        replay: None,
        replay_site: None,
    };
    let (mut algo, mut domain, mut policy) = (None, None, None);
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--json" => opts.json = true,
            "--max-sites" => {
                opts.max_sites = Some(next(&mut args, "--max-sites").parse().expect("bad count"))
            }
            "--seed" => opts.seed = next(&mut args, "--seed").parse().expect("bad seed"),
            "--workload" => opts.workload = next(&mut args, "--workload"),
            "--shards" => {
                opts.shards = next(&mut args, "--shards")
                    .parse()
                    .expect("bad shard count");
                assert!(opts.shards >= 1, "--shards needs at least 1");
            }
            "--workers" => {
                opts.recover.workers = next(&mut args, "--workers")
                    .parse()
                    .expect("bad worker count");
            }
            "--skip-undo-rollback" => opts.recover.skip_undo_rollback = true,
            "--skip-redo-replay" => opts.recover.skip_redo_replay = true,
            "--site" => {
                opts.replay_site = Some(next(&mut args, "--site").parse().expect("bad site"))
            }
            "--algo" => {
                let v = next(&mut args, "--algo");
                algo = Some(parse_algo(&v).unwrap_or_else(|| panic!("unknown algo `{v}`")));
            }
            "--domain" => {
                let v = next(&mut args, "--domain");
                domain = Some(parse_domain(&v).unwrap_or_else(|| panic!("unknown domain `{v}`")));
            }
            "--policy" => {
                let v = next(&mut args, "--policy");
                policy = Some(
                    AdversaryPolicy::parse(&v).unwrap_or_else(|| panic!("unknown policy `{v}`")),
                );
            }
            other => panic!(
                "unknown flag `{other}` (known: --quick --json --max-sites --seed \
                 --workload --shards --workers --skip-undo-rollback --skip-redo-replay \
                 --site --algo --domain --policy)"
            ),
        }
    }
    if opts.replay_site.is_some() {
        opts.replay = Some(SweepCase {
            algo: algo.expect("replay mode needs --algo"),
            domain: domain.expect("replay mode needs --domain"),
            policy: policy.expect("replay mode needs --policy"),
            seed: opts.seed,
        });
    } else {
        assert!(
            algo.is_none() && domain.is_none() && policy.is_none(),
            "--algo/--domain/--policy select a replay and need --site"
        );
    }
    opts
}

fn case_json(
    workload: &dyn CrashWorkload,
    shard: u64,
    case: &SweepCase,
    r: &ptm::CaseResult,
) -> String {
    let violations: Vec<String> = r
        .violations
        .iter()
        .map(|v| {
            format!(
                "{{\"site\":{},\"detail\":\"{}\"}}",
                v.site,
                v.detail.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect();
    format!(
        "{{\"workload\":\"{}\",\"shard\":{},\"algo\":\"{}\",\"domain\":\"{}\",\"policy\":\"{}\",\
         \"seed\":{},\"total_sites\":{},\"sites_run\":{},\"violations\":[{}]}}",
        workload.name(),
        shard,
        algo_name(case.algo),
        domain_name(case.domain),
        case.policy,
        case.seed,
        r.total_sites,
        r.sites_run,
        violations.join(",")
    )
}

/// The cross-shard 2PC sweep: one sharded engine, one global site
/// numbering over all shard machines, `sweep_case_sharded` invariants
/// (all-or-nothing transfers, idempotent resolution, worker-count
/// independent digests).
fn run_transfer_sweep(opts: &Opts) {
    let workload = ShardedTransfers {
        shards: opts.shards as usize,
        ..ShardedTransfers::default()
    };

    if let (Some(case), Some(site)) = (opts.replay, opts.replay_site) {
        let total = count_sites_sharded(&workload, &case);
        let r = run_site_sharded(&workload, &case, site, opts.recover);
        println!(
            "replay workload=transfer shards={} site={}/{} algo={} domain={} policy={} seed={} workers={}",
            workload.shards,
            site,
            total,
            algo_name(case.algo),
            domain_name(case.domain),
            case.policy,
            case.seed,
            opts.recover.workers.max(1),
        );
        match r.fired {
            Some((at, kind)) => println!("crash fired at site {at} ({})", kind.label()),
            None => println!("run completed; crashed at end-of-run"),
        }
        println!(
            "recovery: logs={} redo_replayed={} undo_rolled_back={} torn={} \
             prepared={} indoubt_commit={} indoubt_abort={}",
            r.recovery.logs_scanned,
            r.recovery.redo_replayed,
            r.recovery.undo_rolled_back,
            r.recovery.torn_entries,
            r.recovery.prepared_skipped,
            r.recovery.indoubt_resolved_commit,
            r.recovery.indoubt_resolved_abort,
        );
        println!("state digest: {:#018x}", r.state_digest);
        if r.violations.is_empty() {
            println!("invariants: OK");
        } else {
            for v in &r.violations {
                eprintln!("VIOLATION: {v}");
            }
            std::process::exit(1);
        }
        return;
    }

    let sweep_opts = SweepOptions {
        max_sites_per_case: if opts.quick { Some(12) } else { opts.max_sites },
        recover: opts.recover,
    };
    if !opts.json {
        println!("workload,shard,algo,domain,policy,seed,total_sites,sites_run,violations");
    }
    let mut dirty = false;
    // The 2PC window is a software-path construct; the sweep grid runs
    // the three software logging policies over every domain and
    // adversary (HTM cross-shard commits always take the software path).
    for case in default_cases(opts.seed)
        .into_iter()
        .filter(|c| c.algo != Algo::HtmLogged)
    {
        let r = sweep_case_sharded(&workload, &case, sweep_opts);
        if opts.json {
            let violations: Vec<String> = r
                .violations
                .iter()
                .map(|v| {
                    format!(
                        "{{\"site\":{},\"detail\":\"{}\"}}",
                        v.site,
                        v.detail.replace('\\', "\\\\").replace('"', "\\\"")
                    )
                })
                .collect();
            println!(
                "{{\"workload\":\"transfer\",\"shard\":{},\"algo\":\"{}\",\"domain\":\"{}\",\
                 \"policy\":\"{}\",\"seed\":{},\"total_sites\":{},\"sites_run\":{},\
                 \"violations\":[{}]}}",
                workload.shards,
                algo_name(case.algo),
                domain_name(case.domain),
                case.policy,
                case.seed,
                r.total_sites,
                r.sites_run,
                violations.join(",")
            );
        } else {
            println!(
                "transfer,{},{},{},{},{},{},{},{}",
                workload.shards,
                algo_name(case.algo),
                domain_name(case.domain),
                case.policy,
                case.seed,
                r.total_sites,
                r.sites_run,
                r.violations.len()
            );
        }
        for v in &r.violations {
            dirty = true;
            eprintln!("{v}");
        }
    }
    if dirty {
        std::process::exit(1);
    }
}

fn main() {
    let opts = parse_opts();
    if opts.workload == "transfer" {
        run_transfer_sweep(&opts);
        return;
    }
    let workload = make_workload(&opts.workload);

    if let (Some(case), Some(site)) = (opts.replay, opts.replay_site) {
        let total = count_sites(workload.as_ref(), &case);
        let r = run_site(workload.as_ref(), &case, site, opts.recover);
        println!(
            "replay workload={} site={}/{} algo={} domain={} policy={} seed={}",
            workload.name(),
            site,
            total,
            algo_name(case.algo),
            domain_name(case.domain),
            case.policy,
            case.seed
        );
        match r.fired {
            Some((at, kind)) => println!("crash fired at site {at} ({})", kind.label()),
            None => println!("run completed; crashed at end-of-run"),
        }
        println!(
            "recovery: logs={} redo_replayed={} undo_rolled_back={} torn={}",
            r.recovery.logs_scanned,
            r.recovery.redo_replayed,
            r.recovery.undo_rolled_back,
            r.recovery.torn_entries
        );
        if let Some(gc) = r.gc {
            println!(
                "gc: scanned={} live={} reclaimed={} leaked={}",
                gc.blocks_scanned, gc.live_blocks, gc.reclaimed_blocks, gc.leaked_blocks
            );
        }
        println!("state digest: {:#018x}", r.state_digest);
        if r.violations.is_empty() {
            println!("invariants: OK");
        } else {
            for v in &r.violations {
                eprintln!("VIOLATION: {v}");
            }
            std::process::exit(1);
        }
        return;
    }

    let sweep_opts = SweepOptions {
        max_sites_per_case: if opts.quick { Some(12) } else { opts.max_sites },
        recover: opts.recover,
    };
    if !opts.json {
        println!("workload,shard,algo,domain,policy,seed,total_sites,sites_run,violations");
    }
    let mut dirty = false;
    for shard in 0..opts.shards {
        for case in default_cases(shard_seed(opts.seed, shard)) {
            let r = sweep_case(workload.as_ref(), &case, sweep_opts);
            if opts.json {
                println!("{}", case_json(workload.as_ref(), shard, &case, &r));
            } else {
                println!(
                    "{},{},{},{},{},{},{},{},{}",
                    workload.name(),
                    shard,
                    algo_name(case.algo),
                    domain_name(case.domain),
                    case.policy,
                    case.seed,
                    r.total_sites,
                    r.sites_run,
                    r.violations.len()
                );
            }
            for v in &r.violations {
                dirty = true;
                eprintln!("{v}");
            }
        }
    }
    if dirty {
        std::process::exit(1);
    }
}
