//! Single-thread transaction latency percentiles per durability domain —
//! the paper's discussion of single-thread latency (§V: "higher
//! single-thread latency" on Optane), made explicit.

use bench::{emit_point, run_point, HarnessOpts};
use workloads::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    if !opts.json {
        println!("workload,scenario,p50_ns,p90_ns,p95_ns,p99_ns,p999_ns,max_ns,mops");
    }
    for name in ["tatp", "tpcc-hash"] {
        for sc in Scenario::fig3_grid()
            .iter()
            .chain(Scenario::fig6_grid().iter())
        {
            let r = run_point(name, sc, &opts, 1);
            if opts.json {
                emit_point(&opts, name, &r);
                continue;
            }
            let s = r.latency.summary();
            println!(
                "{},{},{},{},{},{},{},{},{:.4}",
                name,
                r.label,
                s.p50,
                s.p90,
                s.p95,
                s.p99,
                s.p999,
                s.max,
                r.throughput_mops()
            );
        }
    }
}
