//! Single-thread transaction latency percentiles per durability domain —
//! the paper's discussion of single-thread latency (§V: "higher
//! single-thread latency" on Optane), made explicit.

use bench::{run_point, HarnessOpts};
use workloads::Scenario;

fn main() {
    let opts = HarnessOpts::from_args();
    println!("workload,scenario,p50_ns,p95_ns,p99_ns,mops");
    for name in ["tatp", "tpcc-hash"] {
        for sc in Scenario::fig3_grid().iter().chain(Scenario::fig6_grid().iter()) {
            let r = run_point(name, sc, &opts, 1);
            let (p50, p95, p99) = r.latency_ns;
            println!(
                "{},{},{},{},{},{:.4}",
                name, r.label, p50, p95, p99, r.throughput_mops()
            );
        }
    }
}
