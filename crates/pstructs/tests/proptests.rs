//! Property-based model checking of the persistent containers against
//! `std::collections`, under both PTM algorithms.

use palloc::PHeap;
use pmem_sim::{DurabilityDomain, Machine, MachineConfig};
use proptest::prelude::*;
use pstructs::{BpTree, PHashMap, PList, PQueue};
use ptm::{Algo, Ptm, PtmConfig, TxThread};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

fn thread(algo: Algo) -> TxThread {
    let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
    let heap = PHeap::format(&m, "h", 1 << 20, 4);
    let cfg = PtmConfig {
        algo,
        ..PtmConfig::default()
    };
    TxThread::new(Ptm::new(cfg), heap, m.session(0))
}

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u64, u64),
    Get(u64),
    Remove(u64),
}

fn map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..128, any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
            (0u64..128).prop_map(MapOp::Get),
            (0u64..128).prop_map(MapOp::Remove),
        ],
        1..250,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bptree_matches_btreemap(ops in map_ops(), algo_redo in any::<bool>()) {
        let algo = if algo_redo { Algo::RedoLazy } else { Algo::UndoEager };
        let mut th = thread(algo);
        let t = th.run(BpTree::create);
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(th.run(|tx| t.insert(tx, k, v)), model.insert(k, v));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(th.run(|tx| t.get(tx, k)), model.get(&k).copied());
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(th.run(|tx| t.remove(tx, k)), model.remove(&k));
                }
            }
        }
        prop_assert_eq!(th.run(|tx| t.len(tx)), model.len() as u64);
        // Full scan agrees (order + contents).
        let scan = th.run(|tx| t.scan_all(tx));
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(scan, want);
    }

    #[test]
    fn hashmap_matches_hashmap(ops in map_ops()) {
        let mut th = thread(Algo::RedoLazy);
        let map = th.run(|tx| PHashMap::create(tx, 32));
        let mut model = HashMap::new();
        for op in &ops {
            match *op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(th.run(|tx| map.insert(tx, k, v)), model.insert(k, v));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(th.run(|tx| map.get(tx, k)), model.get(&k).copied());
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(th.run(|tx| map.remove(tx, k)), model.remove(&k));
                }
            }
        }
        prop_assert_eq!(th.run(|tx| map.len(tx)), model.len() as u64);
    }

    #[test]
    fn list_matches_btreeset(ops in prop::collection::vec((0u8..3, 0u64..64), 1..150)) {
        let mut th = thread(Algo::RedoLazy);
        let l = th.run(PList::create);
        let mut model = BTreeSet::new();
        for &(op, k) in &ops {
            match op {
                0 => prop_assert_eq!(th.run(|tx| l.insert(tx, k)), model.insert(k)),
                1 => prop_assert_eq!(th.run(|tx| l.contains(tx, k)), model.contains(&k)),
                _ => prop_assert_eq!(th.run(|tx| l.remove(tx, k)), model.remove(&k)),
            }
        }
        let got = th.run(|tx| l.to_vec(tx));
        let want: Vec<u64> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn queue_matches_vecdeque(ops in prop::collection::vec(prop::option::of(any::<u64>()), 1..150)) {
        let mut th = thread(Algo::UndoEager);
        let q = th.run(PQueue::create);
        let mut model = VecDeque::new();
        for op in &ops {
            match op {
                Some(v) => {
                    th.run(|tx| q.enqueue(tx, *v));
                    model.push_back(*v);
                }
                None => {
                    prop_assert_eq!(th.run(|tx| q.dequeue(tx)), model.pop_front());
                }
            }
        }
        prop_assert_eq!(th.run(|tx| q.len(tx)), model.len() as u64);
    }
}
