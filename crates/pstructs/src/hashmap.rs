//! A persistent chained hash table over the PTM (the TPCC "Hash Table"
//! index variant and the TATP table substrate).
//!
//! Fixed bucket count chosen at creation; collisions chain through
//! heap-allocated `[key, value, next]` nodes. Like the B+Tree, every
//! access is transactional.

use pmem_sim::PAddr;
use ptm::{Tx, TxResult};

/// Node layout.
const N_KEY: u64 = 0;
const N_VAL: u64 = 1;
const N_NEXT: u64 = 2;
const NODE_WORDS: usize = 3;

/// Header layout: bucket-array address, bucket count.
const H_BUCKETS: u64 = 0;
const H_NBUCKETS: u64 = 1;
pub const HEADER_WORDS: usize = 4;

/// Handle to a persistent hash map (copyable; address survives crashes).
///
/// ```
/// use pmem_sim::{Machine, MachineConfig, DurabilityDomain};
/// use palloc::PHeap;
/// use ptm::{Ptm, PtmConfig, TxThread};
/// use pstructs::PHashMap;
///
/// let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
/// let heap = PHeap::format(&m, "heap", 1 << 16, 8);
/// let mut th = TxThread::new(Ptm::new(PtmConfig::undo()), heap, m.session(0));
///
/// let map = th.run(|tx| PHashMap::create(tx, 64));
/// th.run(|tx| map.insert(tx, 1, 10).map(|_| ()));
/// th.run(|tx| map.update(tx, 1, |v| v + 5));
/// assert_eq!(th.run(|tx| map.get(tx, 1)), Some(15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PHashMap {
    header: PAddr,
}

#[inline]
fn hash(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16
}

impl PHashMap {
    /// Create with `nbuckets` chains (rounded up to a power of two).
    pub fn create(tx: &mut Tx<'_>, nbuckets: usize) -> TxResult<PHashMap> {
        let nbuckets = nbuckets.max(16).next_power_of_two();
        let header = tx.alloc(HEADER_WORDS);
        // alloc-new: the bucket array can be huge; its zero-initialization
        // bypasses the log (flushed with the commit).
        let buckets = tx.alloc_zeroed(nbuckets);
        tx.write_at(header, H_BUCKETS, buckets.0)?;
        tx.write_at(header, H_NBUCKETS, nbuckets as u64)?;
        Ok(PHashMap { header })
    }

    /// Re-attach from a persisted header address.
    pub fn from_header(header: PAddr) -> PHashMap {
        PHashMap { header }
    }

    pub fn header(&self) -> PAddr {
        self.header
    }

    /// Number of entries. O(n): walks every chain. The count is
    /// deliberately not maintained inline — a shared counter would
    /// serialize all inserts/removes through one hot word.
    pub fn len(&self, tx: &mut Tx<'_>) -> TxResult<u64> {
        let buckets = tx.read_ptr(self.header.offset(H_BUCKETS))?;
        let n = tx.read_at(self.header, H_NBUCKETS)?;
        let mut count = 0;
        for b in 0..n {
            let mut cur = tx.read_ptr(buckets.offset(b))?;
            while !cur.is_null() {
                count += 1;
                cur = tx.read_ptr(cur.offset(N_NEXT))?;
            }
        }
        Ok(count)
    }

    pub fn is_empty(&self, tx: &mut Tx<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    fn bucket_addr(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<PAddr> {
        let buckets = tx.read_ptr(self.header.offset(H_BUCKETS))?;
        let n = tx.read_at(self.header, H_NBUCKETS)?;
        Ok(buckets.offset(hash(key) & (n - 1)))
    }

    /// Point lookup.
    pub fn get(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        let bucket = self.bucket_addr(tx, key)?;
        let mut cur = tx.read_ptr(bucket)?;
        while !cur.is_null() {
            if tx.read_at(cur, N_KEY)? == key {
                return Ok(Some(tx.read_at(cur, N_VAL)?));
            }
            cur = tx.read_ptr(cur.offset(N_NEXT))?;
        }
        Ok(None)
    }

    /// Insert or replace; returns the previous value.
    pub fn insert(&self, tx: &mut Tx<'_>, key: u64, val: u64) -> TxResult<Option<u64>> {
        let bucket = self.bucket_addr(tx, key)?;
        let head = tx.read_ptr(bucket)?;
        let mut cur = head;
        while !cur.is_null() {
            if tx.read_at(cur, N_KEY)? == key {
                let old = tx.read_at(cur, N_VAL)?;
                tx.write_at(cur, N_VAL, val)?;
                return Ok(Some(old));
            }
            cur = tx.read_ptr(cur.offset(N_NEXT))?;
        }
        let node = tx.alloc(NODE_WORDS);
        tx.write_at(node, N_KEY, key)?;
        tx.write_at(node, N_VAL, val)?;
        tx.write_ptr(node.offset(N_NEXT), head)?;
        tx.write_ptr(bucket, node)?;
        Ok(None)
    }

    /// Update an existing key with `f(old)`; returns `false` if absent.
    pub fn update(&self, tx: &mut Tx<'_>, key: u64, f: impl FnOnce(u64) -> u64) -> TxResult<bool> {
        let bucket = self.bucket_addr(tx, key)?;
        let mut cur = tx.read_ptr(bucket)?;
        while !cur.is_null() {
            if tx.read_at(cur, N_KEY)? == key {
                let old = tx.read_at(cur, N_VAL)?;
                tx.write_at(cur, N_VAL, f(old))?;
                return Ok(true);
            }
            cur = tx.read_ptr(cur.offset(N_NEXT))?;
        }
        Ok(false)
    }

    /// Remove a key; returns its value and frees the node.
    pub fn remove(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        let bucket = self.bucket_addr(tx, key)?;
        let mut prev: Option<PAddr> = None;
        let mut cur = tx.read_ptr(bucket)?;
        while !cur.is_null() {
            let next = tx.read_ptr(cur.offset(N_NEXT))?;
            if tx.read_at(cur, N_KEY)? == key {
                let old = tx.read_at(cur, N_VAL)?;
                match prev {
                    Some(p) => tx.write_ptr(p.offset(N_NEXT), next)?,
                    None => tx.write_ptr(bucket, next)?,
                }
                tx.free(cur);
                return Ok(Some(old));
            }
            prev = Some(cur);
            cur = next;
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palloc::PHeap;
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig};
    use ptm::{Algo, Ptm, PtmConfig, TxThread};
    use std::sync::Arc;

    fn setup(algo: Algo) -> (Arc<Machine>, Arc<PHeap>, TxThread) {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "heap", 1 << 20, 8);
        let cfg = PtmConfig::with_algo(algo);
        let th = TxThread::new(Ptm::new(cfg), heap.clone(), m.session(0));
        (m, heap, th)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        for algo in Algo::ALL {
            let (_m, _h, mut th) = setup(algo);
            let map = th.run(|tx| PHashMap::create(tx, 64));
            assert_eq!(th.run(|tx| map.get(tx, 1)), None);
            assert_eq!(th.run(|tx| map.insert(tx, 1, 100)), None);
            assert_eq!(th.run(|tx| map.insert(tx, 1, 200)), Some(100));
            assert_eq!(th.run(|tx| map.get(tx, 1)), Some(200));
            assert_eq!(th.run(|tx| map.remove(tx, 1)), Some(200));
            assert_eq!(th.run(|tx| map.get(tx, 1)), None);
            assert_eq!(th.run(|tx| map.len(tx)), 0, "{algo:?}");
        }
    }

    #[test]
    fn chains_handle_collisions() {
        let (_m, _h, mut th) = setup(Algo::RedoLazy);
        let map = th.run(|tx| PHashMap::create(tx, 16)); // tiny: collisions guaranteed
        for k in 0..200u64 {
            th.run(|tx| map.insert(tx, k, k * 3).map(|_| ()));
        }
        assert_eq!(th.run(|tx| map.len(tx)), 200);
        for k in 0..200u64 {
            assert_eq!(th.run(|tx| map.get(tx, k)), Some(k * 3));
        }
        // Remove from middles of chains.
        for k in (0..200u64).step_by(3) {
            assert_eq!(th.run(|tx| map.remove(tx, k)), Some(k * 3));
        }
        for k in 0..200u64 {
            let expect = (k % 3 != 0).then_some(k * 3);
            assert_eq!(th.run(|tx| map.get(tx, k)), expect);
        }
    }

    #[test]
    fn update_mutates_in_place() {
        let (_m, _h, mut th) = setup(Algo::UndoEager);
        let map = th.run(|tx| PHashMap::create(tx, 64));
        th.run(|tx| map.insert(tx, 9, 5).map(|_| ()));
        assert!(th.run(|tx| map.update(tx, 9, |v| v + 1)));
        assert_eq!(th.run(|tx| map.get(tx, 9)), Some(6));
        assert!(!th.run(|tx| map.update(tx, 404, |v| v)));
    }

    #[test]
    fn removed_nodes_are_freed() {
        let (_m, heap, mut th) = setup(Algo::RedoLazy);
        let map = th.run(|tx| PHashMap::create(tx, 64));
        th.run(|tx| map.insert(tx, 1, 1).map(|_| ()));
        let before = heap.free_blocks();
        th.run(|tx| map.remove(tx, 1).map(|_| ()));
        assert_eq!(heap.free_blocks(), before + 1);
    }

    #[test]
    fn model_check_against_std_hashmap() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let (_m, _h, mut th) = setup(Algo::RedoLazy);
        let map = th.run(|tx| PHashMap::create(tx, 32));
        let mut model = std::collections::HashMap::new();
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..3_000 {
            let key = rng.gen_range(0..256u64);
            match rng.gen_range(0..3) {
                0 => {
                    let v = rng.gen::<u32>() as u64;
                    assert_eq!(th.run(|tx| map.insert(tx, key, v)), model.insert(key, v));
                }
                1 => {
                    assert_eq!(th.run(|tx| map.get(tx, key)), model.get(&key).copied());
                }
                _ => {
                    assert_eq!(th.run(|tx| map.remove(tx, key)), model.remove(&key));
                }
            }
        }
        assert_eq!(th.run(|tx| map.len(tx)), model.len() as u64);
    }

    #[test]
    fn concurrent_inserts_on_disjoint_keys() {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "heap", 1 << 20, 8);
        let ptm = Ptm::new(PtmConfig::undo());
        let mut th0 = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let map = th0.run(|tx| PHashMap::create(tx, 256));
        drop(th0);
        let threads = 4usize;
        let per = 250u64;
        m.begin_run(threads, u64::MAX);
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let m = Arc::clone(&m);
                let ptm = Arc::clone(&ptm);
                let heap = Arc::clone(&heap);
                scope.spawn(move || {
                    let mut th = TxThread::new(ptm, heap, m.session(tid));
                    for i in 0..per {
                        let key = (tid as u64) << 32 | i;
                        th.run(|tx| map.insert(tx, key, key).map(|_| ()));
                    }
                });
            }
        });
        m.begin_run(1, u64::MAX);
        let mut th = TxThread::new(ptm, heap, m.session(0));
        assert_eq!(th.run(|tx| map.len(tx)), threads as u64 * per);
    }
}
