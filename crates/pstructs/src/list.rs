//! A persistent sorted linked list (set semantics) over the PTM — the
//! classic STM microbenchmark shape: long read chains, single-node writes.

use pmem_sim::PAddr;
use ptm::{Tx, TxResult};

const N_KEY: u64 = 0;
const N_NEXT: u64 = 1;
const NODE_WORDS: usize = 2;

/// Header: sentinel head pointer.
const H_HEAD: u64 = 0;
pub const HEADER_WORDS: usize = 2;

/// Handle to a persistent sorted list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PList {
    header: PAddr,
}

impl PList {
    pub fn create(tx: &mut Tx<'_>) -> TxResult<PList> {
        let header = tx.alloc(HEADER_WORDS);
        tx.write_at(header, H_HEAD, 0)?;
        Ok(PList { header })
    }

    pub fn from_header(header: PAddr) -> PList {
        PList { header }
    }

    pub fn header(&self) -> PAddr {
        self.header
    }

    /// Number of keys. O(n): walks the list (no shared counter word).
    pub fn len(&self, tx: &mut Tx<'_>) -> TxResult<u64> {
        Ok(self.to_vec(tx)?.len() as u64)
    }

    pub fn is_empty(&self, tx: &mut Tx<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Membership test.
    pub fn contains(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<bool> {
        let mut cur = tx.read_ptr(self.header.offset(H_HEAD))?;
        while !cur.is_null() {
            let k = tx.read_at(cur, N_KEY)?;
            if k == key {
                return Ok(true);
            }
            if k > key {
                return Ok(false);
            }
            cur = tx.read_ptr(cur.offset(N_NEXT))?;
        }
        Ok(false)
    }

    /// Insert; returns `false` if the key was already present.
    pub fn insert(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<bool> {
        let mut prev: Option<PAddr> = None;
        let mut cur = tx.read_ptr(self.header.offset(H_HEAD))?;
        while !cur.is_null() {
            let k = tx.read_at(cur, N_KEY)?;
            if k == key {
                return Ok(false);
            }
            if k > key {
                break;
            }
            prev = Some(cur);
            cur = tx.read_ptr(cur.offset(N_NEXT))?;
        }
        let node = tx.alloc(NODE_WORDS);
        tx.write_at(node, N_KEY, key)?;
        tx.write_ptr(node.offset(N_NEXT), cur)?;
        match prev {
            Some(p) => tx.write_ptr(p.offset(N_NEXT), node)?,
            None => tx.write_ptr(self.header.offset(H_HEAD), node)?,
        }
        Ok(true)
    }

    /// Remove; returns `false` if absent. Frees the node.
    pub fn remove(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<bool> {
        let mut prev: Option<PAddr> = None;
        let mut cur = tx.read_ptr(self.header.offset(H_HEAD))?;
        while !cur.is_null() {
            let k = tx.read_at(cur, N_KEY)?;
            if k > key {
                return Ok(false);
            }
            let next = tx.read_ptr(cur.offset(N_NEXT))?;
            if k == key {
                match prev {
                    Some(p) => tx.write_ptr(p.offset(N_NEXT), next)?,
                    None => tx.write_ptr(self.header.offset(H_HEAD), next)?,
                }
                tx.free(cur);
                return Ok(true);
            }
            prev = Some(cur);
            cur = next;
        }
        Ok(false)
    }

    /// All keys in order (tests).
    pub fn to_vec(&self, tx: &mut Tx<'_>) -> TxResult<Vec<u64>> {
        let mut out = Vec::new();
        let mut cur = tx.read_ptr(self.header.offset(H_HEAD))?;
        while !cur.is_null() {
            out.push(tx.read_at(cur, N_KEY)?);
            cur = tx.read_ptr(cur.offset(N_NEXT))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palloc::PHeap;
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig};
    use ptm::{Ptm, PtmConfig, TxThread};

    fn setup() -> TxThread {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "heap", 1 << 18, 8);
        TxThread::new(Ptm::new(PtmConfig::redo()), heap, m.session(0))
    }

    #[test]
    fn stays_sorted_and_deduplicated() {
        let mut th = setup();
        let l = th.run(PList::create);
        for k in [5u64, 3, 9, 3, 7, 1, 9] {
            th.run(|tx| l.insert(tx, k).map(|_| ()));
        }
        assert_eq!(th.run(|tx| l.to_vec(tx)), vec![1, 3, 5, 7, 9]);
        assert_eq!(th.run(|tx| l.len(tx)), 5);
    }

    #[test]
    fn contains_and_remove() {
        let mut th = setup();
        let l = th.run(PList::create);
        for k in 0..20u64 {
            th.run(|tx| l.insert(tx, k).map(|_| ()));
        }
        assert!(th.run(|tx| l.contains(tx, 10)));
        assert!(th.run(|tx| l.remove(tx, 10)));
        assert!(!th.run(|tx| l.contains(tx, 10)));
        assert!(!th.run(|tx| l.remove(tx, 10)));
        // Head and tail removals.
        assert!(th.run(|tx| l.remove(tx, 0)));
        assert!(th.run(|tx| l.remove(tx, 19)));
        assert_eq!(th.run(|tx| l.len(tx)), 17);
    }

    #[test]
    fn model_check_against_btreeset() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut th = setup();
        let l = th.run(PList::create);
        let mut model = std::collections::BTreeSet::new();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_500 {
            let key = rng.gen_range(0..64u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(th.run(|tx| l.insert(tx, key)), model.insert(key)),
                1 => assert_eq!(th.run(|tx| l.contains(tx, key)), model.contains(&key)),
                _ => assert_eq!(th.run(|tx| l.remove(tx, key)), model.remove(&key)),
            }
        }
        let got = th.run(|tx| l.to_vec(tx));
        let want: Vec<u64> = model.into_iter().collect();
        assert_eq!(got, want);
    }
}
