//! Persistent byte blobs: variable-length byte strings packed into word
//! storage, for values larger than a word (the KV store's 1 KB values,
//! string fields). A blob is immutable once written; replacing a value
//! allocates a fresh blob and frees the old one (simple, and exactly the
//! copy-on-write discipline persistent stores favor — an in-place
//! partial overwrite that crashes would otherwise need byte-level
//! logging).
//!
//! Layout: `[len_bytes, data_word, data_word, ...]`.

use pmem_sim::PAddr;
use ptm::{Tx, TxResult};

/// Handle to a persistent blob (the address of its length header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PBlob {
    addr: PAddr,
}

impl PBlob {
    /// Write `bytes` as a new blob inside the transaction.
    pub fn create(tx: &mut Tx<'_>, bytes: &[u8]) -> TxResult<PBlob> {
        let words = bytes.len().div_ceil(8);
        let addr = tx.alloc(1 + words.max(1));
        tx.write(addr, bytes.len() as u64)?;
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            tx.write_at(addr, 1 + i as u64, u64::from_le_bytes(w))?;
        }
        Ok(PBlob { addr })
    }

    /// Re-attach from a persisted address.
    pub fn from_addr(addr: PAddr) -> PBlob {
        PBlob { addr }
    }

    pub fn addr(&self) -> PAddr {
        self.addr
    }

    /// Length in bytes.
    pub fn len(&self, tx: &mut Tx<'_>) -> TxResult<usize> {
        Ok(tx.read(self.addr)? as usize)
    }

    pub fn is_empty(&self, tx: &mut Tx<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Read the whole blob.
    pub fn read(&self, tx: &mut Tx<'_>) -> TxResult<Vec<u8>> {
        let len = self.len(tx)?;
        let mut out = Vec::with_capacity(len);
        for i in 0..len.div_ceil(8) {
            let w = tx.read_at(self.addr, 1 + i as u64)?.to_le_bytes();
            let take = (len - out.len()).min(8);
            out.extend_from_slice(&w[..take]);
        }
        Ok(out)
    }

    /// Free the blob's storage (deferred to commit).
    pub fn free(self, tx: &mut Tx<'_>) {
        tx.free(self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palloc::PHeap;
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig};
    use ptm::{Ptm, PtmConfig, TxThread};

    fn setup() -> TxThread {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "heap", 1 << 18, 8);
        TxThread::new(Ptm::new(PtmConfig::redo()), heap, m.session(0))
    }

    #[test]
    fn roundtrip_various_lengths() {
        let mut th = setup();
        for len in [0usize, 1, 7, 8, 9, 63, 64, 100, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let d = data.clone();
            let blob = th.run(|tx| PBlob::create(tx, &d));
            assert_eq!(th.run(|tx| blob.len(tx)), len);
            assert_eq!(th.run(|tx| blob.read(tx)), data, "len {len}");
        }
    }

    #[test]
    fn utf8_string_roundtrip() {
        let mut th = setup();
        let s = "persistent memory — durable строка 永続";
        let blob = th.run(|tx| PBlob::create(tx, s.as_bytes()));
        let back = th.run(|tx| blob.read(tx));
        assert_eq!(String::from_utf8(back).unwrap(), s);
    }

    #[test]
    fn handle_survives_transactions() {
        let mut th = setup();
        let blob = th.run(|tx| PBlob::create(tx, b"hello"));
        let addr = blob.addr();
        // A later transaction re-attaches by address.
        let blob2 = PBlob::from_addr(addr);
        assert_eq!(th.run(|tx| blob2.read(tx)), b"hello");
    }

    #[test]
    fn free_releases_storage() {
        let mut th = setup();
        let heap = std::sync::Arc::clone(th.heap());
        let blob = th.run(|tx| PBlob::create(tx, &[9u8; 64]));
        let before = heap.free_blocks();
        th.run(|tx| {
            PBlob::from_addr(blob.addr()).free(tx);
            Ok(())
        });
        assert_eq!(heap.free_blocks(), before + 1);
    }
}
