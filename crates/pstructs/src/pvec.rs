//! A persistent growable vector of u64 over the PTM.
//!
//! Classic cap-doubling vector with the header indirecting to the data
//! block, so growth is a single transactional pointer swing: allocate
//! the bigger block, copy, publish, free the old one — all atomic under
//! the enclosing transaction.
//!
//! Header: `[data_ptr, len, cap, pad]`; data block: `cap` words.

use pmem_sim::PAddr;
use ptm::{Tx, TxResult};

const H_DATA: u64 = 0;
const H_LEN: u64 = 1;
const H_CAP: u64 = 2;
pub const HEADER_WORDS: usize = 4;

const INITIAL_CAP: u64 = 8;

/// Handle to a persistent vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PVec {
    header: PAddr,
}

impl PVec {
    pub fn create(tx: &mut Tx<'_>) -> TxResult<PVec> {
        let header = tx.alloc(HEADER_WORDS);
        let data = tx.alloc(INITIAL_CAP as usize);
        tx.write_ptr(header.offset(H_DATA), data)?;
        tx.write_at(header, H_LEN, 0)?;
        tx.write_at(header, H_CAP, INITIAL_CAP)?;
        Ok(PVec { header })
    }

    pub fn from_header(header: PAddr) -> PVec {
        PVec { header }
    }

    pub fn header(&self) -> PAddr {
        self.header
    }

    pub fn len(&self, tx: &mut Tx<'_>) -> TxResult<u64> {
        tx.read_at(self.header, H_LEN)
    }

    pub fn is_empty(&self, tx: &mut Tx<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    pub fn capacity(&self, tx: &mut Tx<'_>) -> TxResult<u64> {
        tx.read_at(self.header, H_CAP)
    }

    /// Element read.
    ///
    /// # Errors
    /// Aborts the transaction on out-of-bounds access? No — bounds are a
    /// program error, not a conflict: panics.
    pub fn get(&self, tx: &mut Tx<'_>, i: u64) -> TxResult<u64> {
        let len = self.len(tx)?;
        assert!(i < len, "PVec index {i} out of bounds (len {len})");
        let data = tx.read_ptr(self.header.offset(H_DATA))?;
        tx.read_at(data, i)
    }

    /// Element write.
    pub fn set(&self, tx: &mut Tx<'_>, i: u64, v: u64) -> TxResult<()> {
        let len = self.len(tx)?;
        assert!(i < len, "PVec index {i} out of bounds (len {len})");
        let data = tx.read_ptr(self.header.offset(H_DATA))?;
        tx.write_at(data, i, v)
    }

    /// Append, growing (cap doubling) when full.
    pub fn push(&self, tx: &mut Tx<'_>, v: u64) -> TxResult<()> {
        let len = self.len(tx)?;
        let cap = tx.read_at(self.header, H_CAP)?;
        let mut data = tx.read_ptr(self.header.offset(H_DATA))?;
        if len == cap {
            let new_cap = cap * 2;
            let new_data = tx.alloc(new_cap as usize);
            for i in 0..len {
                let w = tx.read_at(data, i)?;
                tx.write_at(new_data, i, w)?;
            }
            tx.write_ptr(self.header.offset(H_DATA), new_data)?;
            tx.write_at(self.header, H_CAP, new_cap)?;
            tx.free(data);
            data = new_data;
        }
        tx.write_at(data, len, v)?;
        tx.write_at(self.header, H_LEN, len + 1)
    }

    /// Remove and return the last element.
    pub fn pop(&self, tx: &mut Tx<'_>) -> TxResult<Option<u64>> {
        let len = self.len(tx)?;
        if len == 0 {
            return Ok(None);
        }
        let data = tx.read_ptr(self.header.offset(H_DATA))?;
        let v = tx.read_at(data, len - 1)?;
        tx.write_at(self.header, H_LEN, len - 1)?;
        Ok(Some(v))
    }

    /// All elements (tests).
    pub fn to_vec(&self, tx: &mut Tx<'_>) -> TxResult<Vec<u64>> {
        let len = self.len(tx)?;
        let data = tx.read_ptr(self.header.offset(H_DATA))?;
        (0..len).map(|i| tx.read_at(data, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palloc::PHeap;
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig};
    use ptm::{Algo, Ptm, PtmConfig, TxThread};

    fn setup(algo: Algo) -> TxThread {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "heap", 1 << 18, 8);
        let cfg = PtmConfig {
            algo,
            ..PtmConfig::default()
        };
        TxThread::new(Ptm::new(cfg), heap, m.session(0))
    }

    #[test]
    fn push_get_set_pop() {
        for algo in Algo::ALL {
            let mut th = setup(algo);
            let v = th.run(PVec::create);
            for i in 0..5u64 {
                th.run(|tx| v.push(tx, i * 10));
            }
            assert_eq!(th.run(|tx| v.len(tx)), 5);
            assert_eq!(th.run(|tx| v.get(tx, 3)), 30);
            th.run(|tx| v.set(tx, 3, 99));
            assert_eq!(th.run(|tx| v.get(tx, 3)), 99);
            assert_eq!(th.run(|tx| v.pop(tx)), Some(40));
            assert_eq!(th.run(|tx| v.len(tx)), 4, "{algo:?}");
        }
    }

    #[test]
    fn growth_preserves_contents_and_frees_old_block() {
        let mut th = setup(Algo::RedoLazy);
        let heap = std::sync::Arc::clone(th.heap());
        let v = th.run(PVec::create);
        for i in 0..100u64 {
            th.run(|tx| v.push(tx, i));
        }
        assert_eq!(th.run(|tx| v.capacity(tx)), 128);
        let all = th.run(|tx| v.to_vec(tx));
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        // Four growths (8->16->32->64->128): four old blocks freed.
        assert!(heap.free_blocks() >= 4);
    }

    #[test]
    fn growth_mid_transaction_is_atomic() {
        // Fill to capacity, then push twice inside one tx that aborts
        // once: after the retry, contents are exact.
        let mut th = setup(Algo::RedoLazy);
        let v = th.run(PVec::create);
        for i in 0..8u64 {
            th.run(|tx| v.push(tx, i));
        }
        let mut first = true;
        th.run(|tx| {
            v.push(tx, 100)?;
            v.push(tx, 101)?;
            if first {
                first = false;
                return Err(ptm::Abort);
            }
            Ok(())
        });
        let all = th.run(|tx| v.to_vec(tx));
        assert_eq!(all.len(), 10);
        assert_eq!(&all[8..], &[100, 101]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let mut th = setup(Algo::RedoLazy);
        let v = th.run(PVec::create);
        th.run(|tx| v.get(tx, 0));
    }

    #[test]
    fn pop_empty_is_none() {
        let mut th = setup(Algo::RedoLazy);
        let v = th.run(PVec::create);
        assert_eq!(th.run(|tx| v.pop(tx)), None);
    }

    #[test]
    fn model_check_against_vec() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut th = setup(Algo::UndoEager);
        let v = th.run(PVec::create);
        let mut model: Vec<u64> = Vec::new();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..800 {
            match rng.gen_range(0..4) {
                0 | 1 => {
                    let x = rng.gen::<u32>() as u64;
                    th.run(|tx| v.push(tx, x));
                    model.push(x);
                }
                2 => {
                    assert_eq!(th.run(|tx| v.pop(tx)), model.pop());
                }
                _ => {
                    if !model.is_empty() {
                        let i = rng.gen_range(0..model.len() as u64);
                        let x = rng.gen::<u32>() as u64;
                        th.run(|tx| v.set(tx, i, x));
                        model[i as usize] = x;
                    }
                }
            }
        }
        assert_eq!(th.run(|tx| v.to_vec(tx)), model);
    }
}
