//! A persistent FIFO queue over the PTM (used by Vacation-style task
//! hand-off and as a simple write-heavy structure in tests).

use pmem_sim::PAddr;
use ptm::{Tx, TxResult};

const N_VAL: u64 = 0;
const N_NEXT: u64 = 1;
const NODE_WORDS: usize = 2;

/// Header: head, tail, length.
const H_HEAD: u64 = 0;
const H_TAIL: u64 = 1;
const H_LEN: u64 = 2;
pub const HEADER_WORDS: usize = 4;

/// Handle to a persistent queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PQueue {
    header: PAddr,
}

impl PQueue {
    pub fn create(tx: &mut Tx<'_>) -> TxResult<PQueue> {
        let header = tx.alloc(HEADER_WORDS);
        tx.write_at(header, H_HEAD, 0)?;
        tx.write_at(header, H_TAIL, 0)?;
        tx.write_at(header, H_LEN, 0)?;
        Ok(PQueue { header })
    }

    pub fn from_header(header: PAddr) -> PQueue {
        PQueue { header }
    }

    pub fn header(&self) -> PAddr {
        self.header
    }

    pub fn len(&self, tx: &mut Tx<'_>) -> TxResult<u64> {
        tx.read_at(self.header, H_LEN)
    }

    pub fn is_empty(&self, tx: &mut Tx<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Append at the tail.
    pub fn enqueue(&self, tx: &mut Tx<'_>, val: u64) -> TxResult<()> {
        let node = tx.alloc(NODE_WORDS);
        tx.write_at(node, N_VAL, val)?;
        tx.write_at(node, N_NEXT, 0)?;
        let tail = tx.read_ptr(self.header.offset(H_TAIL))?;
        if tail.is_null() {
            tx.write_ptr(self.header.offset(H_HEAD), node)?;
        } else {
            tx.write_ptr(tail.offset(N_NEXT), node)?;
        }
        tx.write_ptr(self.header.offset(H_TAIL), node)?;
        let len = tx.read_at(self.header, H_LEN)?;
        tx.write_at(self.header, H_LEN, len + 1)?;
        Ok(())
    }

    /// Remove from the head; `None` when empty. Frees the node.
    pub fn dequeue(&self, tx: &mut Tx<'_>) -> TxResult<Option<u64>> {
        let head = tx.read_ptr(self.header.offset(H_HEAD))?;
        if head.is_null() {
            return Ok(None);
        }
        let val = tx.read_at(head, N_VAL)?;
        let next = tx.read_ptr(head.offset(N_NEXT))?;
        tx.write_ptr(self.header.offset(H_HEAD), next)?;
        if next.is_null() {
            tx.write_ptr(self.header.offset(H_TAIL), PAddr::NULL)?;
        }
        tx.free(head);
        let len = tx.read_at(self.header, H_LEN)?;
        tx.write_at(self.header, H_LEN, len - 1)?;
        Ok(Some(val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palloc::PHeap;
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig};
    use ptm::{Ptm, PtmConfig, TxThread};
    use std::sync::Arc;

    fn setup() -> (Arc<Machine>, Arc<PHeap>, Arc<Ptm>, TxThread) {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "heap", 1 << 18, 8);
        let ptm = Ptm::new(PtmConfig::redo());
        let th = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        (m, heap, ptm, th)
    }

    #[test]
    fn fifo_order() {
        let (_m, _h, _p, mut th) = setup();
        let q = th.run(PQueue::create);
        for v in 1..=5u64 {
            th.run(|tx| q.enqueue(tx, v));
        }
        for v in 1..=5u64 {
            assert_eq!(th.run(|tx| q.dequeue(tx)), Some(v));
        }
        assert_eq!(th.run(|tx| q.dequeue(tx)), None);
        assert!(th.run(|tx| q.is_empty(tx)));
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let (_m, _h, _p, mut th) = setup();
        let q = th.run(PQueue::create);
        th.run(|tx| q.enqueue(tx, 1));
        th.run(|tx| q.enqueue(tx, 2));
        assert_eq!(th.run(|tx| q.dequeue(tx)), Some(1));
        th.run(|tx| q.enqueue(tx, 3));
        assert_eq!(th.run(|tx| q.dequeue(tx)), Some(2));
        assert_eq!(th.run(|tx| q.dequeue(tx)), Some(3));
        assert_eq!(th.run(|tx| q.len(tx)), 0);
    }

    #[test]
    fn empty_then_refill_resets_tail() {
        let (_m, _h, _p, mut th) = setup();
        let q = th.run(PQueue::create);
        th.run(|tx| q.enqueue(tx, 9));
        assert_eq!(th.run(|tx| q.dequeue(tx)), Some(9));
        // Tail must have been reset; the next enqueue must be dequeueable.
        th.run(|tx| q.enqueue(tx, 10));
        assert_eq!(th.run(|tx| q.dequeue(tx)), Some(10));
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        let (m, heap, ptm, mut th0) = setup();
        let q = th0.run(PQueue::create);
        drop(th0);
        let producers = 2usize;
        let per = 200u64;
        m.begin_run(producers * 2, u64::MAX);
        let consumed: Vec<Vec<u64>> = std::thread::scope(|scope| {
            for tid in 0..producers {
                let m = Arc::clone(&m);
                let ptm = Arc::clone(&ptm);
                let heap = Arc::clone(&heap);
                scope.spawn(move || {
                    let mut th = TxThread::new(ptm, heap, m.session(tid));
                    for i in 0..per {
                        let v = (tid as u64) << 32 | i;
                        th.run(|tx| q.enqueue(tx, v));
                    }
                });
            }
            let handles: Vec<_> = (0..producers)
                .map(|c| {
                    let m = Arc::clone(&m);
                    let ptm = Arc::clone(&ptm);
                    let heap = Arc::clone(&heap);
                    scope.spawn(move || {
                        let mut th = TxThread::new(ptm, heap, m.session(producers + c));
                        let mut got = Vec::new();
                        let mut misses = 0;
                        while got.len() < per as usize && misses < 1_000_000 {
                            match th.run(|tx| q.dequeue(tx)) {
                                Some(v) => got.push(v),
                                None => misses += 1,
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = consumed.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len() as u64,
            producers as u64 * per,
            "items lost or duplicated"
        );
    }
}
