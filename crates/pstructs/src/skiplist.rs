//! A persistent skip list over the PTM: an ordered map like the B+Tree
//! but with probabilistic balance — no rotations or splits, so writer
//! transactions touch only the nodes adjacent to the mutation (smaller
//! write sets, fewer false conflicts on hot upper levels).
//!
//! Node heights are derived **deterministically from the key** (a hash),
//! not from a random-number generator: the structure is rebuilt-free
//! after a crash and identical keys always get identical towers, which
//! keeps recovery trivial and makes test failures reproducible.
//!
//! Node layout: `[key, value, next_0, next_1, ..., next_{h-1}]`.

use pmem_sim::PAddr;
use ptm::{Tx, TxResult};

/// Maximum tower height (supports ~4^12 keys comfortably).
pub const MAX_HEIGHT: usize = 12;

const N_KEY: u64 = 0;
const N_VAL: u64 = 1;
const N_NEXT0: u64 = 2;

/// Header: `MAX_HEIGHT` head pointers.
pub const HEADER_WORDS: usize = MAX_HEIGHT;

/// Tower height for a key: geometric with p = 1/4, deterministic.
fn height_of(key: u64) -> usize {
    let mut h = key;
    h ^= h >> 31;
    h = h.wrapping_mul(0x7FB5_D329_728E_A185);
    h ^= h >> 27;
    // Count pairs of trailing zeros: P(height > k) = 4^-k.
    let mut height = 1;
    let mut bits = h;
    while height < MAX_HEIGHT && bits & 0b11 == 0 {
        height += 1;
        bits >>= 2;
    }
    height
}

/// Handle to a persistent skip list.
///
/// ```
/// use pmem_sim::{Machine, MachineConfig, DurabilityDomain};
/// use palloc::PHeap;
/// use ptm::{Ptm, PtmConfig, TxThread};
/// use pstructs::PSkipList;
///
/// let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
/// let heap = PHeap::format(&m, "heap", 1 << 16, 8);
/// let mut th = TxThread::new(Ptm::new(PtmConfig::redo()), heap, m.session(0));
///
/// let sl = th.run(PSkipList::create);
/// for k in [3u64, 1, 2] {
///     th.run(|tx| sl.insert(tx, k, k * 100).map(|_| ()));
/// }
/// let sorted = th.run(|tx| sl.scan_all(tx));
/// assert_eq!(sorted, vec![(1, 100), (2, 200), (3, 300)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PSkipList {
    header: PAddr,
}

impl PSkipList {
    pub fn create(tx: &mut Tx<'_>) -> TxResult<PSkipList> {
        let header = tx.alloc(HEADER_WORDS);
        for l in 0..MAX_HEIGHT as u64 {
            tx.write_at(header, l, 0)?;
        }
        Ok(PSkipList { header })
    }

    pub fn from_header(header: PAddr) -> PSkipList {
        PSkipList { header }
    }

    pub fn header(&self) -> PAddr {
        self.header
    }

    /// Pointer slot for `level` of `node` (or the header when
    /// `node.is_null()`).
    fn next_slot(&self, node: PAddr, level: usize) -> PAddr {
        if node.is_null() {
            self.header.offset(level as u64)
        } else {
            node.offset(N_NEXT0 + level as u64)
        }
    }

    /// Find the predecessor tower of `key`: `preds[l]` is the node (or
    /// NULL for the header) whose level-`l` pointer must be followed or
    /// spliced.
    fn find_preds(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<([PAddr; MAX_HEIGHT], PAddr)> {
        let mut preds = [PAddr::NULL; MAX_HEIGHT];
        let mut pred = PAddr::NULL;
        let mut found = PAddr::NULL;
        for level in (0..MAX_HEIGHT).rev() {
            loop {
                let next = tx.read_ptr(self.next_slot(pred, level))?;
                if next.is_null() {
                    break;
                }
                let k = tx.read_at(next, N_KEY)?;
                if k < key {
                    pred = next;
                } else {
                    if k == key {
                        found = next;
                    }
                    break;
                }
            }
            preds[level] = pred;
        }
        Ok((preds, found))
    }

    /// Point lookup.
    pub fn get(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        let (_, found) = self.find_preds(tx, key)?;
        if found.is_null() {
            Ok(None)
        } else {
            Ok(Some(tx.read_at(found, N_VAL)?))
        }
    }

    /// Insert or replace; returns the previous value.
    pub fn insert(&self, tx: &mut Tx<'_>, key: u64, val: u64) -> TxResult<Option<u64>> {
        let (preds, found) = self.find_preds(tx, key)?;
        if !found.is_null() {
            let old = tx.read_at(found, N_VAL)?;
            tx.write_at(found, N_VAL, val)?;
            return Ok(Some(old));
        }
        let height = height_of(key);
        let node = tx.alloc(N_NEXT0 as usize + height);
        tx.write_at(node, N_KEY, key)?;
        tx.write_at(node, N_VAL, val)?;
        for (level, &pred) in preds.iter().enumerate().take(height) {
            let slot = self.next_slot(pred, level);
            let next = tx.read_ptr(slot)?;
            tx.write_ptr(node.offset(N_NEXT0 + level as u64), next)?;
            tx.write_ptr(slot, node)?;
        }
        Ok(None)
    }

    /// Remove; returns the value if present. Frees the node.
    pub fn remove(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        let (preds, found) = self.find_preds(tx, key)?;
        if found.is_null() {
            return Ok(None);
        }
        let old = tx.read_at(found, N_VAL)?;
        let height = height_of(key);
        for (level, &pred) in preds.iter().enumerate().take(height) {
            let slot = self.next_slot(pred, level);
            // The predecessor may sit before an earlier same-level node
            // when towers collide; only unlink where the pointer matches.
            if tx.read_ptr(slot)? == found {
                let next = tx.read_ptr(found.offset(N_NEXT0 + level as u64))?;
                tx.write_ptr(slot, next)?;
            }
        }
        tx.free(found);
        Ok(Some(old))
    }

    /// All pairs in key order.
    pub fn scan_all(&self, tx: &mut Tx<'_>) -> TxResult<Vec<(u64, u64)>> {
        let mut out = Vec::new();
        let mut cur = tx.read_ptr(self.header)?; // level-0 head
        while !cur.is_null() {
            out.push((tx.read_at(cur, N_KEY)?, tx.read_at(cur, N_VAL)?));
            cur = tx.read_ptr(cur.offset(N_NEXT0))?;
        }
        Ok(out)
    }

    /// Number of keys. O(n).
    pub fn len(&self, tx: &mut Tx<'_>) -> TxResult<u64> {
        Ok(self.scan_all(tx)?.len() as u64)
    }

    pub fn is_empty(&self, tx: &mut Tx<'_>) -> TxResult<bool> {
        Ok(tx.read_ptr(self.header)?.is_null())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palloc::PHeap;
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig};
    use ptm::{Algo, Ptm, PtmConfig, TxThread};
    use std::sync::Arc;

    fn setup(algo: Algo) -> TxThread {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "heap", 1 << 20, 8);
        let cfg = PtmConfig {
            algo,
            ..PtmConfig::default()
        };
        TxThread::new(Ptm::new(cfg), heap, m.session(0))
    }

    #[test]
    fn heights_are_deterministic_and_distributed() {
        let h1: Vec<usize> = (0..1_000u64).map(height_of).collect();
        let h2: Vec<usize> = (0..1_000u64).map(height_of).collect();
        assert_eq!(h1, h2, "derived heights must be stable");
        let tall = h1.iter().filter(|&&h| h >= 2).count();
        // Geometric p=1/4: ~25% of towers are height >= 2.
        assert!((150..350).contains(&tall), "got {tall} tall towers");
        assert!(h1.iter().all(|&h| (1..=MAX_HEIGHT).contains(&h)));
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        for algo in Algo::ALL {
            let mut th = setup(algo);
            let sl = th.run(PSkipList::create);
            assert!(th.run(|tx| sl.is_empty(tx)));
            assert_eq!(th.run(|tx| sl.insert(tx, 5, 50)), None);
            assert_eq!(th.run(|tx| sl.insert(tx, 5, 55)), Some(50));
            assert_eq!(th.run(|tx| sl.get(tx, 5)), Some(55));
            assert_eq!(th.run(|tx| sl.remove(tx, 5)), Some(55));
            assert_eq!(th.run(|tx| sl.get(tx, 5)), None, "{algo:?}");
        }
    }

    #[test]
    fn scan_is_sorted() {
        let mut th = setup(Algo::RedoLazy);
        let sl = th.run(PSkipList::create);
        for k in [9u64, 1, 7, 3, 5, 2, 8, 4, 6, 0] {
            th.run(|tx| sl.insert(tx, k, k * 10).map(|_| ()));
        }
        let scan = th.run(|tx| sl.scan_all(tx));
        assert_eq!(scan.len(), 10);
        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
        for (k, v) in scan {
            assert_eq!(v, k * 10);
        }
    }

    #[test]
    fn model_check_against_btreemap() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut th = setup(Algo::RedoLazy);
        let sl = th.run(PSkipList::create);
        let mut model = std::collections::BTreeMap::new();
        let mut rng = SmallRng::seed_from_u64(31337);
        for _ in 0..3_000 {
            let key = rng.gen_range(0..300u64);
            match rng.gen_range(0..3) {
                0 => {
                    let v = rng.gen::<u32>() as u64;
                    assert_eq!(th.run(|tx| sl.insert(tx, key, v)), model.insert(key, v));
                }
                1 => assert_eq!(th.run(|tx| sl.get(tx, key)), model.get(&key).copied()),
                _ => assert_eq!(th.run(|tx| sl.remove(tx, key)), model.remove(&key)),
            }
        }
        let scan = th.run(|tx| sl.scan_all(tx));
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(scan, want);
    }

    #[test]
    fn towers_link_all_levels() {
        // Find a key with a tall tower and check every level reaches it.
        let mut th = setup(Algo::RedoLazy);
        let sl = th.run(PSkipList::create);
        let tall_key = (0..10_000u64).find(|&k| height_of(k) >= 3).unwrap();
        for k in 0..200u64 {
            th.run(|tx| sl.insert(tx, k, k).map(|_| ()));
        }
        if tall_key < 200 {
            // Walk from the header at level 2 and expect to encounter it.
            let found = th.run(|tx| {
                let mut cur = tx.read_ptr(sl.header.offset(2))?;
                while !cur.is_null() {
                    if tx.read_at(cur, N_KEY)? == tall_key {
                        return Ok(true);
                    }
                    cur = tx.read_ptr(cur.offset(N_NEXT0 + 2))?;
                }
                Ok(false)
            });
            assert!(found, "tall tower for {tall_key} must be linked at level 2");
        }
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "heap", 1 << 20, 8);
        let ptm = Ptm::new(PtmConfig::redo());
        let mut th0 = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let sl = th0.run(PSkipList::create);
        drop(th0);
        m.begin_run(4, u64::MAX);
        std::thread::scope(|scope| {
            for tid in 0..4usize {
                let m = Arc::clone(&m);
                let ptm = Arc::clone(&ptm);
                let heap = Arc::clone(&heap);
                scope.spawn(move || {
                    let mut th = TxThread::new(ptm, heap, m.session(tid));
                    for i in 0..200u64 {
                        let key = (tid as u64) << 32 | i;
                        th.run(|tx| sl.insert(tx, key, key).map(|_| ()));
                    }
                });
            }
        });
        m.begin_run(1, u64::MAX);
        let mut th = TxThread::new(ptm, heap, m.session(0));
        assert_eq!(th.run(|tx| sl.len(tx)), 800);
        let scan = th.run(|tx| sl.scan_all(tx));
        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
