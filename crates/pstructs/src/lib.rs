//! # pstructs — persistent data structures on the PTM
//!
//! The containers the paper's workloads are built from, each fully
//! transactional (every node access goes through [`ptm::Tx`], so the
//! structures inherit the PTM's atomicity, isolation and durability):
//!
//! * [`bptree::BpTree`] — fixed-fanout B+Tree (DudeTM's microbenchmark
//!   structure and the TPCC B+Tree index);
//! * [`hashmap::PHashMap`] — chained hash table (TPCC Hash-Table index,
//!   TATP tables, memcached-like KV index);
//! * [`list::PList`] — sorted linked list (classic STM microbenchmark);
//! * [`queue::PQueue`] — FIFO queue;
//! * [`skiplist::PSkipList`] — ordered map with probabilistic balance
//!   (deterministic towers; smaller write sets than the B+Tree);
//! * [`pvec::PVec`] — growable vector (copy-grow, atomic publish);
//! * [`blob::PBlob`] — immutable byte blobs for values larger than a word.
//!
//! Handles are plain persistent addresses: store them in a
//! [`palloc::PHeap`] root slot and re-attach after a crash with
//! `from_header`.

pub mod blob;
pub mod bptree;
pub mod hashmap;
pub mod list;
pub mod pvec;
pub mod queue;
pub mod skiplist;

pub use blob::PBlob;
pub use bptree::BpTree;
pub use hashmap::PHashMap;
pub use list::PList;
pub use pvec::PVec;
pub use queue::PQueue;
pub use skiplist::PSkipList;
