//! A persistent B+Tree over the PTM (the DudeTM microbenchmark structure,
//! also used as the TPCC index).
//!
//! Fixed fanout, u64 keys and values, proactive split on descent (a full
//! child is split before entering it, so inserts never backtrack).
//! Removal takes the common benchmark shortcut of not rebalancing:
//! underfull leaves are legal and empty leaves stay linked. All node
//! accesses go through [`ptm::Tx`], so the tree is linearizable and
//! durable exactly as the PTM algorithm guarantees.
//!
//! Node layout (`NODE_WORDS` = 2 + 2·B words):
//!
//! ```text
//! word 0        meta: count << 1 | is_leaf
//! words 1..1+B  keys
//! leaf:     1+B..1+2B values,  1+2B next-leaf pointer
//! internal: 1+B..2+2B children (B+1 of them)
//! ```

use palloc::PHeap;
use pmem_sim::PAddr;
use ptm::{Tx, TxResult};

/// Maximum keys per node.
pub const B: usize = 16;
/// Words per node block.
pub const NODE_WORDS: usize = 2 + 2 * B;

const META: u64 = 0;
const KEYS: u64 = 1;
const VALS: u64 = 1 + B as u64; // leaf only
const CHILD: u64 = 1 + B as u64; // internal only (B+1 slots)
const NEXT: u64 = 1 + 2 * B as u64; // leaf only

/// Header block words.
const H_ROOT: u64 = 0;
/// Header block size.
pub const HEADER_WORDS: usize = 4;

#[inline]
fn meta(count: usize, leaf: bool) -> u64 {
    ((count as u64) << 1) | leaf as u64
}

/// A handle to a persistent B+Tree: just the address of its header block,
/// cheap to copy and valid across crashes (store it in a heap root).
///
/// ```
/// use pmem_sim::{Machine, MachineConfig, DurabilityDomain};
/// use palloc::PHeap;
/// use ptm::{Ptm, PtmConfig, TxThread};
/// use pstructs::BpTree;
///
/// let m = Machine::new(MachineConfig::functional(DurabilityDomain::Adr));
/// let heap = PHeap::format(&m, "heap", 1 << 16, 8);
/// let mut th = TxThread::new(Ptm::new(PtmConfig::redo()), heap, m.session(0));
///
/// let tree = th.run(BpTree::create);
/// th.run(|tx| tree.insert(tx, 7, 700).map(|_| ()));
/// assert_eq!(th.run(|tx| tree.get(tx, 7)), Some(700));
/// assert_eq!(th.run(|tx| tree.remove(tx, 7)), Some(700));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpTree {
    header: PAddr,
}

impl BpTree {
    /// Create an empty tree inside the current transaction.
    pub fn create(tx: &mut Tx<'_>) -> TxResult<BpTree> {
        let header = tx.alloc(HEADER_WORDS);
        let root = tx.alloc(NODE_WORDS);
        tx.write_at(root, META, meta(0, true))?;
        tx.write_at(root, NEXT, 0)?;
        tx.write_at(header, H_ROOT, root.0)?;
        Ok(BpTree { header })
    }

    /// Re-attach to a tree whose header address was persisted (e.g. in a
    /// heap root slot).
    pub fn from_header(header: PAddr) -> BpTree {
        BpTree { header }
    }

    /// The persistent header address (store this in a root slot).
    pub fn header(&self) -> PAddr {
        self.header
    }

    /// Number of key/value pairs. O(n): walks the leaf chain. The count
    /// is deliberately **not** maintained in the header — a shared
    /// counter would serialize every insert/remove through one word,
    /// which no benchmark-grade tree does.
    pub fn len(&self, tx: &mut Tx<'_>) -> TxResult<u64> {
        Ok(self.scan_all(tx)?.len() as u64)
    }

    pub fn is_empty(&self, tx: &mut Tx<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    #[inline]
    fn node_count_leaf(tx: &mut Tx<'_>, node: PAddr) -> TxResult<(usize, bool)> {
        let m = tx.read_at(node, META)?;
        Ok(((m >> 1) as usize, m & 1 == 1))
    }

    /// Binary search for the first slot in `node` whose key is >= `key`.
    fn lower_bound(tx: &mut Tx<'_>, node: PAddr, count: usize, key: u64) -> TxResult<usize> {
        let mut lo = 0usize;
        let mut hi = count;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = tx.read_at(node, KEYS + mid as u64)?;
            if k < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Child index to descend into: number of keys <= `key` (separator k
    /// sends key >= k to the right).
    fn child_index(tx: &mut Tx<'_>, node: PAddr, count: usize, key: u64) -> TxResult<usize> {
        let mut lo = 0usize;
        let mut hi = count;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = tx.read_at(node, KEYS + mid as u64)?;
            if key >= k {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Point lookup.
    pub fn get(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        let mut node = tx.read_ptr(self.header.offset(H_ROOT))?;
        loop {
            let (count, leaf) = Self::node_count_leaf(tx, node)?;
            if leaf {
                let pos = Self::lower_bound(tx, node, count, key)?;
                if pos < count && tx.read_at(node, KEYS + pos as u64)? == key {
                    return Ok(Some(tx.read_at(node, VALS + pos as u64)?));
                }
                return Ok(None);
            }
            let ci = Self::child_index(tx, node, count, key)?;
            node = PAddr(tx.read_at(node, CHILD + ci as u64)?);
        }
    }

    /// Insert or replace; returns the previous value if the key existed.
    pub fn insert(&self, tx: &mut Tx<'_>, key: u64, val: u64) -> TxResult<Option<u64>> {
        let root = tx.read_ptr(self.header.offset(H_ROOT))?;
        let (rcount, rleaf) = Self::node_count_leaf(tx, root)?;
        let mut cur = if rcount == B {
            // Grow the tree: new root with the old root as its only child.
            let new_root = tx.alloc(NODE_WORDS);
            tx.write_at(new_root, META, meta(0, false))?;
            tx.write_at(new_root, CHILD, root.0)?;
            tx.write_ptr(self.header.offset(H_ROOT), new_root)?;
            Self::split_child(tx, new_root, 0, root, rleaf)?;
            new_root
        } else {
            root
        };
        loop {
            let (count, leaf) = Self::node_count_leaf(tx, cur)?;
            if leaf {
                let pos = Self::lower_bound(tx, cur, count, key)?;
                if pos < count && tx.read_at(cur, KEYS + pos as u64)? == key {
                    let old = tx.read_at(cur, VALS + pos as u64)?;
                    tx.write_at(cur, VALS + pos as u64, val)?;
                    return Ok(Some(old));
                }
                // Shift right and insert.
                for i in (pos..count).rev() {
                    let k = tx.read_at(cur, KEYS + i as u64)?;
                    let v = tx.read_at(cur, VALS + i as u64)?;
                    tx.write_at(cur, KEYS + i as u64 + 1, k)?;
                    tx.write_at(cur, VALS + i as u64 + 1, v)?;
                }
                tx.write_at(cur, KEYS + pos as u64, key)?;
                tx.write_at(cur, VALS + pos as u64, val)?;
                tx.write_at(cur, META, meta(count + 1, true))?;
                return Ok(None);
            }
            let mut ci = Self::child_index(tx, cur, count, key)?;
            let mut child = PAddr(tx.read_at(cur, CHILD + ci as u64)?);
            let (ccount, cleaf) = Self::node_count_leaf(tx, child)?;
            if ccount == B {
                Self::split_child(tx, cur, ci, child, cleaf)?;
                // Re-route: the separator key now at `ci` decides.
                let sep = tx.read_at(cur, KEYS + ci as u64)?;
                if key >= sep {
                    ci += 1;
                }
                child = PAddr(tx.read_at(cur, CHILD + ci as u64)?);
            }
            cur = child;
        }
    }

    /// Split the full `child` (at `parent`'s slot `ci`) into two nodes,
    /// promoting a separator into `parent`. `parent` must not be full.
    fn split_child(
        tx: &mut Tx<'_>,
        parent: PAddr,
        ci: usize,
        child: PAddr,
        child_is_leaf: bool,
    ) -> TxResult<()> {
        let (pcount, pleaf) = Self::node_count_leaf(tx, parent)?;
        debug_assert!(!pleaf && pcount < B);
        let right = tx.alloc(NODE_WORDS);
        let mid = B / 2;
        let sep;
        if child_is_leaf {
            // Right leaf takes keys[mid..B]; separator = its first key.
            let rcount = B - mid;
            for i in 0..rcount {
                let k = tx.read_at(child, KEYS + (mid + i) as u64)?;
                let v = tx.read_at(child, VALS + (mid + i) as u64)?;
                tx.write_at(right, KEYS + i as u64, k)?;
                tx.write_at(right, VALS + i as u64, v)?;
            }
            sep = tx.read_at(right, KEYS)?;
            let next = tx.read_at(child, NEXT)?;
            tx.write_at(right, NEXT, next)?;
            tx.write_at(child, NEXT, right.0)?;
            tx.write_at(right, META, meta(rcount, true))?;
            tx.write_at(child, META, meta(mid, true))?;
        } else {
            // Internal: promote keys[mid]; right takes keys[mid+1..] and
            // children[mid+1..].
            sep = tx.read_at(child, KEYS + mid as u64)?;
            let rcount = B - mid - 1;
            for i in 0..rcount {
                let k = tx.read_at(child, KEYS + (mid + 1 + i) as u64)?;
                tx.write_at(right, KEYS + i as u64, k)?;
            }
            for i in 0..=rcount {
                let c = tx.read_at(child, CHILD + (mid + 1 + i) as u64)?;
                tx.write_at(right, CHILD + i as u64, c)?;
            }
            tx.write_at(right, META, meta(rcount, false))?;
            tx.write_at(child, META, meta(mid, false))?;
        }
        // Make room in the parent at slot ci.
        for i in (ci..pcount).rev() {
            let k = tx.read_at(parent, KEYS + i as u64)?;
            tx.write_at(parent, KEYS + i as u64 + 1, k)?;
        }
        for i in (ci + 1..=pcount).rev() {
            let c = tx.read_at(parent, CHILD + i as u64)?;
            tx.write_at(parent, CHILD + i as u64 + 1, c)?;
        }
        tx.write_at(parent, KEYS + ci as u64, sep)?;
        tx.write_at(parent, CHILD + ci as u64 + 1, right.0)?;
        tx.write_at(parent, META, meta(pcount + 1, false))?;
        Ok(())
    }

    /// Remove a key; returns its value if present. Leaves may underflow
    /// (no rebalancing — the standard benchmark simplification).
    pub fn remove(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        let mut node = tx.read_ptr(self.header.offset(H_ROOT))?;
        loop {
            let (count, leaf) = Self::node_count_leaf(tx, node)?;
            if leaf {
                let pos = Self::lower_bound(tx, node, count, key)?;
                if pos < count && tx.read_at(node, KEYS + pos as u64)? == key {
                    let old = tx.read_at(node, VALS + pos as u64)?;
                    for i in pos + 1..count {
                        let k = tx.read_at(node, KEYS + i as u64)?;
                        let v = tx.read_at(node, VALS + i as u64)?;
                        tx.write_at(node, KEYS + i as u64 - 1, k)?;
                        tx.write_at(node, VALS + i as u64 - 1, v)?;
                    }
                    tx.write_at(node, META, meta(count - 1, true))?;
                    return Ok(Some(old));
                }
                return Ok(None);
            }
            let ci = Self::child_index(tx, node, count, key)?;
            node = PAddr(tx.read_at(node, CHILD + ci as u64)?);
        }
    }

    /// In-order key/value scan via the leaf chain (tests, debugging).
    pub fn scan_all(&self, tx: &mut Tx<'_>) -> TxResult<Vec<(u64, u64)>> {
        // Find the leftmost leaf.
        let mut node = tx.read_ptr(self.header.offset(H_ROOT))?;
        loop {
            let (_, leaf) = Self::node_count_leaf(tx, node)?;
            if leaf {
                break;
            }
            node = PAddr(tx.read_at(node, CHILD)?);
        }
        let mut out = Vec::new();
        loop {
            let (count, _) = Self::node_count_leaf(tx, node)?;
            for i in 0..count {
                out.push((
                    tx.read_at(node, KEYS + i as u64)?,
                    tx.read_at(node, VALS + i as u64)?,
                ));
            }
            let next = tx.read_at(node, NEXT)?;
            if next == 0 {
                return Ok(out);
            }
            node = PAddr(next);
        }
    }
}

/// Convenience: create a tree in its own transaction and persist its
/// header into `root_slot` of the heap.
pub fn create_rooted(th: &mut ptm::TxThread, heap: &PHeap, root_slot: usize) -> BpTree {
    let tree = th.run(BpTree::create);
    heap.set_root(th.session_mut(), root_slot, tree.header());
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use palloc::PHeap;
    use pmem_sim::{DurabilityDomain, Machine, MachineConfig};
    use ptm::{Algo, Ptm, PtmConfig, TxThread};
    use std::sync::Arc;

    fn setup(algo: Algo) -> (Arc<Machine>, Arc<PHeap>, TxThread) {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "heap", 1 << 20, 8);
        let cfg = PtmConfig::with_algo(algo);
        let ptm = Ptm::new(cfg);
        let th = TxThread::new(ptm, heap.clone(), m.session(0));
        (m, heap, th)
    }

    #[test]
    fn empty_tree_lookups_miss() {
        let (_m, _h, mut th) = setup(Algo::RedoLazy);
        let t = th.run(BpTree::create);
        let r = th.run(|tx| t.get(tx, 42));
        assert_eq!(r, None);
        assert_eq!(th.run(|tx| t.len(tx)), 0);
    }

    #[test]
    fn insert_get_roundtrip_with_splits() {
        for algo in Algo::ALL {
            let (_m, _h, mut th) = setup(algo);
            let t = th.run(BpTree::create);
            let n = 500u64;
            for k in 0..n {
                let key = (k * 2654435761) % 10_000; // scrambled inserts
                th.run(|tx| t.insert(tx, key, key * 10).map(|_| ()));
            }
            for k in 0..n {
                let key = (k * 2654435761) % 10_000;
                let v = th.run(|tx| t.get(tx, key));
                assert_eq!(v, Some(key * 10), "{algo:?} key {key}");
            }
            assert_eq!(th.run(|tx| t.get(tx, 10_001)), None);
        }
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let (_m, _h, mut th) = setup(Algo::RedoLazy);
        let t = th.run(BpTree::create);
        assert_eq!(th.run(|tx| t.insert(tx, 7, 1)), None);
        assert_eq!(th.run(|tx| t.insert(tx, 7, 2)), Some(1));
        assert_eq!(th.run(|tx| t.get(tx, 7)), Some(2));
        assert_eq!(th.run(|tx| t.len(tx)), 1);
    }

    #[test]
    fn remove_works_and_tolerates_missing() {
        let (_m, _h, mut th) = setup(Algo::RedoLazy);
        let t = th.run(BpTree::create);
        for k in 0..200u64 {
            th.run(|tx| t.insert(tx, k, k).map(|_| ()));
        }
        for k in (0..200u64).step_by(2) {
            assert_eq!(th.run(|tx| t.remove(tx, k)), Some(k));
        }
        assert_eq!(th.run(|tx| t.remove(tx, 0)), None);
        assert_eq!(th.run(|tx| t.len(tx)), 100);
        for k in 0..200u64 {
            let expect = (k % 2 == 1).then_some(k);
            assert_eq!(th.run(|tx| t.get(tx, k)), expect, "key {k}");
        }
    }

    #[test]
    fn scan_is_sorted_and_complete() {
        let (_m, _h, mut th) = setup(Algo::RedoLazy);
        let t = th.run(BpTree::create);
        let keys = [50u64, 10, 90, 30, 70, 20, 80, 40, 60, 0];
        for &k in &keys {
            th.run(|tx| t.insert(tx, k, k + 1).map(|_| ()));
        }
        let scan = th.run(|tx| t.scan_all(tx));
        let got_keys: Vec<u64> = scan.iter().map(|&(k, _)| k).collect();
        let mut want = keys.to_vec();
        want.sort_unstable();
        assert_eq!(got_keys, want);
        for (k, v) in scan {
            assert_eq!(v, k + 1);
        }
    }

    #[test]
    fn sequential_inserts_build_deep_tree() {
        let (_m, _h, mut th) = setup(Algo::RedoLazy);
        let t = th.run(BpTree::create);
        let n = 3_000u64;
        for k in 0..n {
            th.run(|tx| t.insert(tx, k, !k).map(|_| ()));
        }
        assert_eq!(th.run(|tx| t.len(tx)), n);
        for k in (0..n).step_by(97) {
            assert_eq!(th.run(|tx| t.get(tx, k)), Some(!k));
        }
        let scan = th.run(|tx| t.scan_all(tx));
        assert_eq!(scan.len() as u64, n);
        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn model_check_against_btreemap() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for algo in Algo::ALL {
            let (_m, _h, mut th) = setup(algo);
            let t = th.run(BpTree::create);
            let mut model = std::collections::BTreeMap::new();
            let mut rng = SmallRng::seed_from_u64(12345);
            for _ in 0..4_000 {
                let key = rng.gen_range(0..512u64);
                match rng.gen_range(0..3) {
                    0 => {
                        let v = rng.gen::<u32>() as u64;
                        let got = th.run(|tx| t.insert(tx, key, v));
                        assert_eq!(got, model.insert(key, v), "{algo:?} insert {key}");
                    }
                    1 => {
                        let got = th.run(|tx| t.get(tx, key));
                        assert_eq!(got, model.get(&key).copied(), "{algo:?} get {key}");
                    }
                    _ => {
                        let got = th.run(|tx| t.remove(tx, key));
                        assert_eq!(got, model.remove(&key), "{algo:?} remove {key}");
                    }
                }
            }
            assert_eq!(th.run(|tx| t.len(tx)), model.len() as u64);
        }
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let m = Machine::new(MachineConfig::functional(DurabilityDomain::Eadr));
        let heap = PHeap::format(&m, "heap", 1 << 20, 8);
        let ptm = Ptm::new(PtmConfig::redo());
        let mut th0 = TxThread::new(ptm.clone(), heap.clone(), m.session(0));
        let t = th0.run(BpTree::create);
        drop(th0);
        let threads = 4usize;
        let per = 300u64;
        m.begin_run(threads, u64::MAX);
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let m = Arc::clone(&m);
                let ptm = Arc::clone(&ptm);
                let heap = Arc::clone(&heap);
                scope.spawn(move || {
                    let mut th = TxThread::new(ptm, heap, m.session(tid));
                    for i in 0..per {
                        let key = tid as u64 * 1_000_000 + i;
                        th.run(|tx| t.insert(tx, key, key).map(|_| ()));
                    }
                });
            }
        });
        m.begin_run(1, u64::MAX);
        let mut th = TxThread::new(ptm, heap, m.session(0));
        assert_eq!(th.run(|tx| t.len(tx)), threads as u64 * per);
        for tid in 0..threads {
            for i in (0..per).step_by(37) {
                let key = tid as u64 * 1_000_000 + i;
                assert_eq!(th.run(|tx| t.get(tx, key)), Some(key));
            }
        }
    }
}
