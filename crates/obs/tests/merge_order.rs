//! Property: the merged, per-shard time series is a pure function of
//! what each thread observed — the order in which threads retire (and
//! hence submit their sample rings), and the order shards are merged
//! in, must not change a single exported row.

use obs::{export, series, Sampler};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use trace::EventKind;

/// A compact thread event script: (virtual-time delta, kind selector,
/// payload). Deltas keep per-thread timestamps monotone, as the real
/// session clock does.
type Script = Vec<(u64, u8, u64)>;

const KINDS: [EventKind; 6] = [
    EventKind::TxCommit,
    EventKind::TxAbort,
    EventKind::Sfence,
    EventKind::WpqStall,
    EventKind::Clwb,
    EventKind::Backoff,
];

fn scripts() -> impl Strategy<Value = Vec<Vec<Script>>> {
    // 1..=3 shards, each with 1..=3 threads, each with up to 40 events.
    prop::collection::vec(
        prop::collection::vec(
            prop::collection::vec((1u64..20_000, 0u8..KINDS.len() as u8, 0u64..500), 1..40),
            1..4,
        ),
        1..4,
    )
}

/// Feed every script into per-shard samplers, submitting thread rings
/// in the order given by `order` (a permutation of all (shard, thread)
/// pairs), then export the merged series as canonical JSONL.
fn render(shards: &[Vec<Script>], order: &[(usize, usize)]) -> String {
    let samplers: Vec<Sampler> = (0..shards.len())
        .map(|s| Sampler::new_for_shard(obs::DEFAULT_PERIOD_NS, 64, s))
        .collect();
    for &(s, t) in order {
        let sampler = &samplers[s];
        let mut ring = sampler.ring();
        let mut ts = 0u64;
        for &(dt, k, a) in &shards[s][t] {
            ts += dt;
            ring.ingest(ts, KINDS[k as usize], a, a / 3);
        }
        sampler.submit(t as u32, ring);
    }
    // Merge the shards in the order their threads happened to retire —
    // the aggregate must not care.
    let mut refs: Vec<&Sampler> = Vec::new();
    for &(s, _) in order {
        if !refs.iter().any(|r| std::ptr::eq(*r, &samplers[s])) {
            refs.push(&samplers[s]);
        }
    }
    let mut out = String::new();
    for row in series::aggregate(&refs) {
        out.push_str(&export::series_row_json(&row));
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merged_series_is_submission_order_invariant(
        shards in scripts(),
        seed in any::<u64>(),
    ) {
        let mut order: Vec<(usize, usize)> = shards
            .iter()
            .enumerate()
            .flat_map(|(s, threads)| (0..threads.len()).map(move |t| (s, t)))
            .collect();
        let baseline = render(&shards, &order);

        // Fisher–Yates shuffle: an arbitrary retirement order.
        let mut rng = SmallRng::seed_from_u64(seed);
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let shuffled = render(&shards, &order);
        prop_assert_eq!(baseline, shuffled);
    }
}
