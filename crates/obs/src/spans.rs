//! Per-transaction critical-path reconstruction and tail-latency
//! decomposition.
//!
//! The flight recorder stamps every engine event with the virtual
//! clock; wait-style events (`Sfence`, `FenceJoin`, `WpqStall`,
//! `Backoff`, `QueueWait`) are stamped at wait *start* carrying the
//! duration in `a`. That is exactly enough to rebuild each committed
//! operation as a span and cut it into exhaustive components: every
//! virtual nanosecond between the first `TxBegin` and the `TxCommit`
//! lands in exactly one bucket, so component sums equal measured
//! latency *by construction* — the 1% acceptance check then only
//! verifies that the trace covers the driver's measurement window.

use trace::{EventKind, ThreadTrace};

/// Critical-path components, in display order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Comp {
    /// Open-loop arrival-queue wait before the worker picked the
    /// request up (sharded front-end only).
    Queue = 0,
    /// Speculative execution: reads, writes, user logic, HTM attempts.
    Exec = 1,
    /// Commit protocol: orec acquire, validation, publish.
    Commit = 2,
    /// Log persistence: log writes and clwb traffic up to the fence.
    Flush = 3,
    /// Waiting for the WPQ to accept outstanding flushes at a fence.
    FenceWait = 4,
    /// Synchronous WPQ backpressure stalls.
    WpqStall = 5,
    /// Contention backoff between attempts.
    Backoff = 6,
    /// Abort cleanup (undo, orec release) before the retry.
    Rollback = 7,
}

pub const COMP_COUNT: usize = 8;

impl Comp {
    pub const ALL: [Comp; COMP_COUNT] = [
        Comp::Queue,
        Comp::Exec,
        Comp::Commit,
        Comp::Flush,
        Comp::FenceWait,
        Comp::WpqStall,
        Comp::Backoff,
        Comp::Rollback,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Comp::Queue => "queue",
            Comp::Exec => "exec",
            Comp::Commit => "commit",
            Comp::Flush => "flush",
            Comp::FenceWait => "fence_wait",
            Comp::WpqStall => "wpq_stall",
            Comp::Backoff => "backoff",
            Comp::Rollback => "rollback",
        }
    }
}

/// One committed operation's reconstructed critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpan {
    pub tid: u32,
    /// Timestamp of the first `TxBegin` attempt.
    pub begin_ts: u64,
    /// Timestamp of the `TxCommit`.
    pub end_ts: u64,
    /// Request arrival (open-loop front-end), else `begin_ts`.
    pub arrival_ts: u64,
    /// Attempts including the committed one.
    pub attempts: u32,
    /// Exhaustive decomposition; sums to `total_ns`.
    pub comp_ns: [u64; COMP_COUNT],
}

impl OpSpan {
    /// Queue wait plus everything between begin and commit.
    pub fn total_ns(&self) -> u64 {
        self.comp_ns.iter().sum()
    }

    /// End-to-end sojourn as the open-loop driver measures it.
    pub fn sojourn_ns(&self) -> u64 {
        self.end_ts.saturating_sub(self.arrival_ts)
    }
}

/// Which component the work *leading up to* an event belongs to: each
/// event marks the completion of a slice of work, so the segment since
/// the previous event is classified by what it produced.
fn segment_comp(kind: EventKind) -> Comp {
    match kind {
        // Work ending in an access, an abort discovery, a hardware
        // abort/fallback/retirement, or a retry begin is speculation.
        EventKind::TxBegin
        | EventKind::TxRead
        | EventKind::TxWrite
        | EventKind::TxAbort
        | EventKind::HtmAbort
        | EventKind::HtmFallback
        | EventKind::HtmRetire => Comp::Exec,
        // Work ending in acquire/validate/publish is commit protocol.
        EventKind::TxAcquire | EventKind::TxValidate | EventKind::TxCommit => Comp::Commit,
        // Work ending in flush traffic — including the gap up to a
        // fence or a mid-flush WPQ stall — is log persistence.
        EventKind::Clwb
        | EventKind::ClwbBatch
        | EventKind::WpqAccept
        | EventKind::Sfence
        | EventKind::FenceJoin
        | EventKind::WpqStall => Comp::Flush,
        // Work ending at a backoff start is abort cleanup.
        EventKind::Backoff => Comp::Rollback,
        _ => Comp::Exec,
    }
}

/// Reconstruct committed-operation spans from per-thread traces.
/// Recovery-band threads are skipped; events outside any transaction
/// (setup flushes, recovery) are ignored. Returns the spans plus the
/// total events dropped by the source rings — when nonzero the spans
/// are a suffix of the run (rings overwrite oldest) and tail statistics
/// remain valid, but totals are lower bounds.
pub fn reconstruct(threads: &[ThreadTrace]) -> (Vec<OpSpan>, u64) {
    let mut spans = Vec::new();
    let mut dropped = 0;
    for t in threads {
        if trace::is_recovery_tid(t.tid) {
            continue;
        }
        dropped += t.dropped;
        let mut cur: Option<OpSpan> = None;
        // (bucket, remaining ns) of a wait event whose interval covers
        // the time after it (waits are stamped at wait start).
        let mut wait: Option<(Comp, u64)> = None;
        // (wait ns, arrival ts, dequeue ts) of the QueueWait preceding
        // the next TxBegin.
        let mut queued: Option<(u64, u64, u64)> = None;
        let mut last_ts = 0u64;
        for ev in &t.events {
            let Some(span) = cur.as_mut() else {
                match ev.kind {
                    EventKind::QueueWait => queued = Some((ev.a, ev.b, ev.ts)),
                    EventKind::TxBegin => {
                        let mut s = OpSpan {
                            tid: t.tid,
                            begin_ts: ev.ts,
                            end_ts: ev.ts,
                            arrival_ts: ev.ts,
                            attempts: 1,
                            comp_ns: [0; COMP_COUNT],
                        };
                        if let Some((qns, arrival, dequeue_ts)) = queued.take() {
                            s.comp_ns[Comp::Queue as usize] = qns;
                            // Begin-cost gap between dequeue and the
                            // TxBegin stamp counts as execution, so the
                            // components sum to the sojourn exactly.
                            s.comp_ns[Comp::Exec as usize] += ev.ts.saturating_sub(dequeue_ts);
                            s.arrival_ts = arrival;
                        }
                        cur = Some(s);
                        wait = None;
                        last_ts = ev.ts;
                    }
                    _ => {}
                }
                continue;
            };
            // Charge the segment since the previous event: any pending
            // wait interval is consumed first, the remainder is work
            // classified by the event that completes it.
            let mut dt = ev.ts.saturating_sub(last_ts);
            if let Some((bucket, remaining)) = wait.take() {
                let w = dt.min(remaining);
                span.comp_ns[bucket as usize] += w;
                dt -= w;
                if remaining > w {
                    // The wait interval extends past this event; keep
                    // consuming from subsequent segments.
                    wait = Some((bucket, remaining - w));
                }
            }
            span.comp_ns[segment_comp(ev.kind) as usize] += dt;
            match ev.kind {
                EventKind::TxBegin => span.attempts += 1,
                EventKind::Sfence | EventKind::FenceJoin => {
                    wait = Some((Comp::FenceWait, ev.a));
                }
                EventKind::WpqStall => wait = Some((Comp::WpqStall, ev.a)),
                EventKind::Backoff => wait = Some((Comp::Backoff, ev.a)),
                EventKind::TxCommit => {
                    span.end_ts = ev.ts;
                    spans.push(*span);
                    cur = None;
                }
                _ => {}
            }
            last_ts = ev.ts;
        }
    }
    spans.sort_by_key(|s| (s.begin_ts, s.tid));
    (spans, dropped)
}

/// Mean per-component breakdown of a set of spans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Breakdown {
    pub count: usize,
    pub mean_total_ns: f64,
    pub mean_comp_ns: [f64; COMP_COUNT],
}

impl Breakdown {
    pub fn of(spans: &[&OpSpan]) -> Breakdown {
        let mut b = Breakdown {
            count: spans.len(),
            ..Breakdown::default()
        };
        if spans.is_empty() {
            return b;
        }
        let n = spans.len() as f64;
        for s in spans {
            b.mean_total_ns += s.total_ns() as f64;
            for (i, c) in s.comp_ns.iter().enumerate() {
                b.mean_comp_ns[i] += *c as f64;
            }
        }
        b.mean_total_ns /= n;
        for c in &mut b.mean_comp_ns {
            *c /= n;
        }
        b
    }
}

/// One tail row: the exact percentile total plus the mean decomposition
/// over the cohort at-or-above it ("what is the p99 made of").
#[derive(Debug, Clone, Copy, Default)]
pub struct TailRow {
    /// Percentile in [0, 100].
    pub pct: f64,
    /// Exact order-statistic total at this percentile.
    pub threshold_ns: u64,
    pub cohort: Breakdown,
}

/// Full-run decomposition: overall mean plus tail rows.
#[derive(Debug, Clone, Default)]
pub struct Decomposition {
    pub spans: usize,
    /// Events dropped by source rings; > 0 means totals are lower
    /// bounds over a suffix of the run.
    pub dropped_events: u64,
    pub mean: Breakdown,
    pub tails: Vec<TailRow>,
}

/// Decompose spans at the given percentiles (e.g. `[50.0, 95.0, 99.0]`).
/// Totals are exact order statistics over span totals (no histogram
/// bucketing); each tail row averages the spans at or above its
/// threshold, so "p99 = X ns queue + Y ns fence + ..." is computed from
/// the actual tail cohort.
pub fn decompose(spans: &[OpSpan], dropped_events: u64, pcts: &[f64]) -> Decomposition {
    let mut by_total: Vec<&OpSpan> = spans.iter().collect();
    by_total.sort_by_key(|s| s.total_ns());
    let mut d = Decomposition {
        spans: spans.len(),
        dropped_events,
        mean: Breakdown::of(&by_total),
        tails: Vec::new(),
    };
    if by_total.is_empty() {
        return d;
    }
    for &pct in pcts {
        let p = (pct / 100.0).clamp(0.0, 1.0);
        // Nearest-rank on the sorted totals.
        let idx = ((p * by_total.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(by_total.len() - 1);
        let threshold = by_total[idx].total_ns();
        let cohort: Vec<&OpSpan> = by_total[idx..].to_vec();
        d.tails.push(TailRow {
            pct,
            threshold_ns: threshold,
            cohort: Breakdown::of(&cohort),
        });
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::{ThreadTrace, TraceEvent};

    fn thread(tid: u32, evs: &[(u64, EventKind, u64, u64)]) -> ThreadTrace {
        ThreadTrace {
            tid,
            events: evs
                .iter()
                .map(|&(ts, kind, a, b)| TraceEvent { ts, kind, a, b })
                .collect(),
            dropped: 0,
        }
    }

    #[test]
    fn span_components_sum_to_latency() {
        // begin@100 .. reads .. clwb .. fence(wait 30) .. commit@300
        let t = thread(
            7,
            &[
                (90, EventKind::QueueWait, 40, 50),
                (100, EventKind::TxBegin, 0, 100),
                (140, EventKind::TxRead, 1, 8),
                (160, EventKind::TxWrite, 1, 8),
                (180, EventKind::TxAcquire, 1, 0),
                (200, EventKind::Clwb, 5, 1),
                (220, EventKind::Sfence, 30, 0),
                (300, EventKind::TxCommit, 2, 0),
            ],
        );
        let (spans, dropped) = reconstruct(&[t]);
        assert_eq!(dropped, 0);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.attempts, 1);
        assert_eq!(s.arrival_ts, 50);
        // Components close the sojourn exactly: queue 40 + dequeue->begin
        // gap 10 + in-span 200.
        assert_eq!(s.total_ns(), s.sojourn_ns());
        assert_eq!(s.sojourn_ns(), 250);
        assert_eq!(s.comp_ns[Comp::Queue as usize], 40);
        // 90..100 begin gap + 100..160 exec (reads/writes), 160..180
        // commit (acquire), 180..220 flush (clwb + pre-fence), 220..250
        // fence wait, 250..300 commit tail.
        assert_eq!(s.comp_ns[Comp::Exec as usize], 70);
        assert_eq!(s.comp_ns[Comp::Flush as usize], 40);
        assert_eq!(s.comp_ns[Comp::FenceWait as usize], 30);
        assert_eq!(s.comp_ns[Comp::Commit as usize], 20 + 50);
        assert_eq!(s.comp_ns[Comp::Rollback as usize], 0);
    }

    #[test]
    fn aborted_attempts_fold_into_one_span() {
        let t = thread(
            1,
            &[
                (0, EventKind::TxBegin, 0, 0),
                (50, EventKind::TxAbort, 3, 9),
                (60, EventKind::Backoff, 40, 0),
                (100, EventKind::TxBegin, 1, 0),
                (150, EventKind::TxCommit, 1, 0),
            ],
        );
        let (spans, _) = reconstruct(&[t]);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.attempts, 2);
        assert_eq!(s.total_ns(), 150);
        assert_eq!(s.comp_ns[Comp::Exec as usize], 50);
        assert_eq!(s.comp_ns[Comp::Rollback as usize], 10);
        assert_eq!(s.comp_ns[Comp::Backoff as usize], 40);
        assert_eq!(s.comp_ns[Comp::Commit as usize], 50);
    }

    #[test]
    fn decompose_reports_exact_tail_thresholds() {
        let mut spans = Vec::new();
        for i in 0..100u64 {
            spans.push(OpSpan {
                tid: 0,
                begin_ts: i * 1000,
                end_ts: i * 1000 + (i + 1) * 10,
                arrival_ts: i * 1000,
                attempts: 1,
                comp_ns: {
                    let mut c = [0; COMP_COUNT];
                    c[Comp::Exec as usize] = (i + 1) * 10;
                    c
                },
            });
        }
        let d = decompose(&spans, 0, &[50.0, 99.0]);
        assert_eq!(d.spans, 100);
        assert_eq!(d.tails[0].threshold_ns, 500);
        assert_eq!(d.tails[1].threshold_ns, 990);
        assert_eq!(d.tails[1].cohort.count, 2);
        let sum: f64 = d.tails[1].cohort.mean_comp_ns.iter().sum();
        assert!((sum - d.tails[1].cohort.mean_total_ns).abs() < 1e-9);
    }
}
