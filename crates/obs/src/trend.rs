//! Bench-trend regression guard: parse archived `results/BENCH_*.json`
//! files (JSON-Lines concatenations of every bench bin's `--json`
//! output) and diff headline metrics across consecutive PRs.
//!
//! The extractor is deliberately narrow: it pulls only the identity
//! keys (`workload`, `scenario`, `threads` / `shards` ×
//! `threads_per_shard`) and the headline metrics (`throughput_mops`,
//! first `"p99"`), and it refuses lines stamped with a *newer*
//! `schema_version` than it understands instead of misparsing them.
//! Lines without a version are grandfathered as version 1 (the PR 1-8
//! archives).

use crate::export::SCHEMA_VERSION;

/// Locate `"key":` at object scope and return the text after the colon.
fn after_key<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    line.find(&needle).map(|i| &line[i + needle.len()..])
}

/// Extract a numeric value for `key` (first occurrence).
pub fn json_num(line: &str, key: &str) -> Option<f64> {
    let rest = after_key(line, key)?;
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract a string value for `key` (first occurrence), unescaping the
/// two escapes our writers emit (`\"` and `\\`).
pub fn json_str(line: &str, key: &str) -> Option<String> {
    let rest = after_key(line, key)?.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// One comparable point extracted from an archive line.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Identity: `workload|scenario|<population>`.
    pub key: String,
    pub throughput_mops: Option<f64>,
    /// First `"p99"` on the line: per-op latency p99 for driver points,
    /// sojourn p99 for sharded open-loop points.
    pub p99_ns: Option<f64>,
    pub schema_version: u32,
}

/// What [`parse_archive`] extracted from one archive file.
#[derive(Debug, Clone, Default)]
pub struct ParsedArchive {
    pub points: Vec<TrendPoint>,
    /// Lines skipped because they carry a newer schema than this build.
    pub skipped_newer: usize,
    /// Lines that start an object but never close it — a truncated or
    /// partially written archive (e.g. a run killed mid-append). The
    /// caller should warn and diff the surviving points, not abort.
    pub truncated: usize,
}

/// True when `line`'s braces, brackets and quotes all close — the test
/// a partially written JSONL line fails.
fn line_is_complete(line: &str) -> bool {
    let (mut braces, mut brackets) = (0i64, 0i64);
    let mut in_str = false;
    let mut esc = false;
    for c in line.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' if !in_str => braces += 1,
            '}' if !in_str => braces -= 1,
            '[' if !in_str => brackets += 1,
            ']' if !in_str => brackets -= 1,
            _ => {}
        }
    }
    !in_str && braces == 0 && brackets == 0
}

/// Parse one archive: the points, plus counts of newer-schema lines
/// and truncated (partially written) lines, both skipped.
pub fn parse_archive(text: &str) -> ParsedArchive {
    let mut points: Vec<TrendPoint> = Vec::new();
    let mut skipped = 0;
    let mut truncated = 0;
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('{') {
            continue;
        }
        if !line_is_complete(line) {
            truncated += 1;
            continue;
        }
        let version = json_num(line, "schema_version").map_or(1, |v| v as u32);
        if version > SCHEMA_VERSION {
            skipped += 1;
            continue;
        }
        let (Some(workload), Some(scenario)) =
            (json_str(line, "workload"), json_str(line, "scenario"))
        else {
            continue;
        };
        let population = if let Some(shards) = json_num(line, "shards") {
            let tps = json_num(line, "threads_per_shard").unwrap_or(1.0);
            format!("s{}x{}", shards as u64, tps as u64)
        } else if let Some(t) = json_num(line, "threads") {
            format!("t{}", t as u64)
        } else {
            "t0".to_string()
        };
        let key = format!("{workload}|{scenario}|{population}");
        if points.iter().any(|p| p.key == key) {
            // Bins occasionally re-run the same point; first wins so
            // diffs stay stable.
            continue;
        }
        points.push(TrendPoint {
            key,
            throughput_mops: json_num(line, "throughput_mops"),
            p99_ns: json_num(line, "p99"),
            schema_version: version,
        });
    }
    ParsedArchive {
        points,
        skipped_newer: skipped,
        truncated,
    }
}

/// One metric's movement between two archives.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendDelta {
    pub key: String,
    pub metric: &'static str,
    pub prev: f64,
    pub next: f64,
    /// Signed relative change in percent (positive = metric went up).
    pub pct: f64,
    /// True when the movement is in the *bad* direction beyond
    /// tolerance (throughput down, p99 up).
    pub regressed: bool,
}

/// Diff two archives' points at a tolerance (e.g. `0.10` = 10%).
#[derive(Debug, Clone, Default)]
pub struct TrendReport {
    pub deltas: Vec<TrendDelta>,
    /// Points present in both archives.
    pub common: usize,
    pub added: usize,
    pub removed: usize,
    pub regressions: usize,
}

/// Per-metric regression tolerances (relative, e.g. `0.10` = 10%).
///
/// p99 gets a wider default than throughput: archived percentiles come
/// from the power-bucketed `LatencyHistogram`, whose adjacent buckets
/// are 33–50% apart, so any real movement lands at least one bucket
/// (≥ 33%) away and sub-bucket "changes" cannot exist. A p99 tolerance
/// below one bucket would flag pure quantization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    pub throughput: f64,
    pub p99: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            throughput: 0.10,
            p99: 0.60,
        }
    }
}

pub fn diff(prev: &[TrendPoint], next: &[TrendPoint], tol: Tolerance) -> TrendReport {
    let mut rep = TrendReport::default();
    for n in next {
        let Some(p) = prev.iter().find(|p| p.key == n.key) else {
            rep.added += 1;
            continue;
        };
        rep.common += 1;
        let mut push =
            |metric: &'static str, pv: f64, nv: f64, higher_is_worse: bool, tolerance: f64| {
                if pv <= 0.0 {
                    return;
                }
                let pct = (nv - pv) / pv * 100.0;
                let regressed = if higher_is_worse {
                    nv > pv * (1.0 + tolerance)
                } else {
                    nv < pv * (1.0 - tolerance)
                };
                if regressed {
                    rep.regressions += 1;
                }
                rep.deltas.push(TrendDelta {
                    key: n.key.clone(),
                    metric,
                    prev: pv,
                    next: nv,
                    pct,
                    regressed,
                });
            };
        if let (Some(pv), Some(nv)) = (p.throughput_mops, n.throughput_mops) {
            push("throughput_mops", pv, nv, false, tol.throughput);
        }
        if let (Some(pv), Some(nv)) = (p.p99_ns, n.p99_ns) {
            push("p99_ns", pv, nv, true, tol.p99);
        }
    }
    rep.removed = prev
        .iter()
        .filter(|p| !next.iter().any(|n| n.key == p.key))
        .count();
    rep
}

/// Discover `BENCH_PR<N>.json` archives under `dir`, ordered by N.
pub fn discover_archives(dir: &std::path::Path) -> Vec<(u64, std::path::PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("BENCH_PR")
            .and_then(|s| s.strip_suffix(".json"))
        {
            if let Ok(n) = num.parse::<u64>() {
                found.push((n, e.path()));
            }
        }
    }
    found.sort();
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    const V1: &str = r#"{"workload":"tpcc-hash","scenario":"Optane_ADR","threads":4,"throughput_mops":1.2000,"latency":{"count":100,"p50":10,"p99":900}}
{"workload":"kv-zipf","scenario":"Optane_ADR_sharded","shards":8,"threads_per_shard":1,"throughput_mops":6.0000,"sojourn":{"count":10,"p99":5000}}"#;

    #[test]
    fn extracts_identity_and_metrics() {
        let parsed = parse_archive(V1);
        let (pts, skipped) = (parsed.points, parsed.skipped_newer);
        assert_eq!(skipped, 0);
        assert_eq!(parsed.truncated, 0);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].key, "tpcc-hash|Optane_ADR|t4");
        assert_eq!(pts[0].throughput_mops, Some(1.2));
        assert_eq!(pts[0].p99_ns, Some(900.0));
        assert_eq!(pts[0].schema_version, 1);
        assert_eq!(pts[1].key, "kv-zipf|Optane_ADR_sharded|s8x1");
        assert_eq!(pts[1].p99_ns, Some(5000.0));
    }

    #[test]
    fn rejects_newer_schema_lines() {
        let line = format!(
            "{{\"schema_version\":{},\"workload\":\"x\",\"scenario\":\"y\",\"threads\":1}}",
            SCHEMA_VERSION + 1
        );
        let parsed = parse_archive(&line);
        assert!(parsed.points.is_empty());
        assert_eq!(parsed.skipped_newer, 1);
    }

    #[test]
    fn diff_flags_directional_regressions() {
        let prev = parse_archive(V1).points;
        let next_text = V1
            .replace("\"throughput_mops\":1.2000", "\"throughput_mops\":0.9000")
            .replace("\"p99\":5000", "\"p99\":5200");
        let next = parse_archive(&next_text).points;
        let rep = diff(&prev, &next, Tolerance::default());
        assert_eq!(rep.common, 2);
        // Throughput -25% regresses; sojourn p99 +4% is far below the
        // one-bucket (60%) p99 tolerance.
        assert_eq!(rep.regressions, 1);
        let t = rep
            .deltas
            .iter()
            .find(|d| d.metric == "throughput_mops" && d.key.starts_with("tpcc-hash"))
            .unwrap();
        assert!(t.regressed);
        assert!((t.pct + 25.0).abs() < 0.01);
        let p = rep.deltas.iter().find(|d| d.metric == "p99_ns").unwrap();
        assert!(!p.regressed);
    }

    #[test]
    fn p99_tolerance_absorbs_one_bucket_quantization() {
        let prev = parse_archive(V1).points;
        // +33% = one histogram bucket: quantization, not a regression.
        let one_bucket = V1.replace("\"p99\":5000", "\"p99\":6650");
        let next = parse_archive(&one_bucket).points;
        assert_eq!(diff(&prev, &next, Tolerance::default()).regressions, 0);
        // +100% = clearly more than one bucket: flagged.
        let two_bucket = V1.replace("\"p99\":5000", "\"p99\":10000");
        let next = parse_archive(&two_bucket).points;
        assert_eq!(diff(&prev, &next, Tolerance::default()).regressions, 1);
    }

    #[test]
    fn truncated_lines_are_counted_not_parsed() {
        // A complete line, a line cut mid-string, a line cut mid-object,
        // and one cut inside a nested array — only the first parses.
        let text = concat!(
            r#"{"workload":"a","scenario":"s","threads":1,"throughput_mops":1.0}"#,
            "\n",
            r#"{"workload":"b","scenario":"s","threads":2,"throughput_mo"#,
            "\n",
            r#"{"workload":"c","scenario":"s","threads":4,"#,
            "\n",
            r#"{"workload":"d","scenario":"s","tails":[{"pct":99.0,"#,
            "\n",
        );
        let parsed = parse_archive(text);
        assert_eq!(parsed.truncated, 3);
        assert_eq!(parsed.points.len(), 1);
        assert_eq!(parsed.points[0].key, "a|s|t1");
        // The surviving points still diff normally.
        let rep = diff(&parsed.points, &parsed.points, Tolerance::default());
        assert_eq!(rep.common, 1);
        assert_eq!(rep.regressions, 0);
    }

    #[test]
    fn p999_does_not_shadow_p99() {
        let line = r#"{"workload":"w","scenario":"s","threads":1,"latency":{"p999":7,"p99":5}}"#;
        assert_eq!(json_num(line, "p99"), Some(5.0));
    }
}
