//! JSONL + CSV export of sampled series and span decompositions,
//! next to the bench `--json` schema (hand-rolled writers — the build
//! environment has no serde).

use crate::series::ShardRow;
use crate::spans::{Comp, Decomposition, COMP_COUNT};
use trace::{AbortCause, HtmAbortCause};

/// Version stamped into every JSONL line this workspace emits
/// (`obs` series/decomposition rows and the bench report schemas).
/// Bump when a consumer-visible key changes meaning or disappears;
/// `bench_trend` and `obs_report` refuse lines from a newer version
/// instead of misparsing them.
pub const SCHEMA_VERSION: u32 = 2;

fn push_kv_u64(out: &mut String, key: &str, v: u64) {
    out.push_str(&format!("\"{key}\":{v}"));
}

fn push_kv_f64(out: &mut String, key: &str, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("\"{key}\":{v:.4}"));
    } else {
        out.push_str(&format!("\"{key}\":null"));
    }
}

/// One series row as a JSON line.
pub fn series_row_json(r: &ShardRow) -> String {
    let mut o = String::with_capacity(512);
    o.push('{');
    push_kv_u64(&mut o, "schema_version", SCHEMA_VERSION as u64);
    o.push_str(",\"kind\":\"obs_series\",");
    push_kv_u64(&mut o, "ts", r.ts);
    o.push(',');
    push_kv_u64(&mut o, "shard", r.shard as u64);
    o.push(',');
    push_kv_u64(&mut o, "threads", r.threads as u64);
    o.push(',');
    push_kv_u64(&mut o, "commits", r.g.commits);
    o.push(',');
    push_kv_u64(&mut o, "htm_commits", r.g.htm_commits);
    o.push(',');
    push_kv_u64(&mut o, "twopc_commits", r.g.twopc_commits);
    o.push_str(",\"aborts\":{");
    for (i, c) in AbortCause::ALL.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        push_kv_u64(&mut o, c.label(), r.g.aborts[i]);
    }
    o.push_str("},\"htm_aborts\":{");
    for (i, c) in HtmAbortCause::ALL.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        push_kv_u64(&mut o, c.label(), r.g.htm_aborts[i]);
    }
    o.push_str("},");
    for (key, v) in [
        ("htm_fallbacks", r.g.htm_fallbacks),
        ("reads", r.g.reads),
        ("writes", r.g.writes),
        ("log_entries", r.g.log_entries),
        ("htm_log_entries", r.g.htm_log_entries),
        ("sfences", r.g.sfences),
        ("fence_wait_ns", r.g.fence_wait_ns),
        ("fence_joins", r.g.fence_joins),
        ("join_wait_ns", r.g.join_wait_ns),
        ("clwbs", r.g.clwbs),
        ("clwb_batches", r.g.clwb_batches),
        ("wpq_accepts", r.g.wpq_accepts),
        ("wpq_backlog_hw_ns", r.g.wpq_backlog_hw_ns),
        ("wpq_stalls", r.g.wpq_stalls),
        ("wpq_stall_ns", r.g.wpq_stall_ns),
        ("backoffs", r.g.backoffs),
        ("backoff_ns", r.g.backoff_ns),
        ("backoff_hw_ns", r.g.backoff_hw_ns),
        ("queue_waits", r.g.queue_waits),
        ("queue_wait_ns", r.g.queue_wait_ns),
    ] {
        push_kv_u64(&mut o, key, v);
        o.push(',');
    }
    o.pop();
    o.push('}');
    o
}

/// CSV header matching [`series_row_csv`].
pub fn series_csv_header() -> String {
    let mut h = String::from("ts,shard,threads,commits,htm_commits,twopc_commits");
    for c in AbortCause::ALL {
        h.push_str(",aborts_");
        h.push_str(c.label());
    }
    for c in HtmAbortCause::ALL {
        h.push_str(",htm_aborts_");
        h.push_str(c.label());
    }
    h.push_str(
        ",htm_fallbacks,reads,writes,log_entries,htm_log_entries,\
         sfences,fence_wait_ns,fence_joins,join_wait_ns,clwbs,clwb_batches,\
         wpq_accepts,wpq_backlog_hw_ns,wpq_stalls,wpq_stall_ns,\
         backoffs,backoff_ns,backoff_hw_ns,queue_waits,queue_wait_ns",
    );
    h
}

/// One series row as a CSV line (column order = [`series_csv_header`]).
pub fn series_row_csv(r: &ShardRow) -> String {
    let mut o = format!(
        "{},{},{},{},{},{}",
        r.ts, r.shard, r.threads, r.g.commits, r.g.htm_commits, r.g.twopc_commits
    );
    for v in r.g.aborts {
        o.push_str(&format!(",{v}"));
    }
    for v in r.g.htm_aborts {
        o.push_str(&format!(",{v}"));
    }
    for v in [
        r.g.htm_fallbacks,
        r.g.reads,
        r.g.writes,
        r.g.log_entries,
        r.g.htm_log_entries,
        r.g.sfences,
        r.g.fence_wait_ns,
        r.g.fence_joins,
        r.g.join_wait_ns,
        r.g.clwbs,
        r.g.clwb_batches,
        r.g.wpq_accepts,
        r.g.wpq_backlog_hw_ns,
        r.g.wpq_stalls,
        r.g.wpq_stall_ns,
        r.g.backoffs,
        r.g.backoff_ns,
        r.g.backoff_hw_ns,
        r.g.queue_waits,
        r.g.queue_wait_ns,
    ] {
        o.push_str(&format!(",{v}"));
    }
    o
}

/// A whole decomposition as one JSON line (tail rows inline).
pub fn decomposition_json(label: &str, d: &Decomposition) -> String {
    let mut o = String::with_capacity(1024);
    o.push('{');
    push_kv_u64(&mut o, "schema_version", SCHEMA_VERSION as u64);
    o.push_str(&format!(
        ",\"kind\":\"obs_decomposition\",\"label\":\"{}\",",
        label.replace('\\', "\\\\").replace('"', "\\\"")
    ));
    push_kv_u64(&mut o, "spans", d.spans as u64);
    o.push(',');
    push_kv_u64(&mut o, "dropped_events", d.dropped_events);
    o.push(',');
    push_kv_f64(&mut o, "mean_total_ns", d.mean.mean_total_ns);
    o.push_str(",\"mean\":{");
    for (i, c) in Comp::ALL.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        push_kv_f64(&mut o, c.label(), d.mean.mean_comp_ns[i]);
    }
    o.push_str("},\"tails\":[");
    for (ti, t) in d.tails.iter().enumerate() {
        if ti > 0 {
            o.push(',');
        }
        o.push('{');
        push_kv_f64(&mut o, "pct", t.pct);
        o.push(',');
        push_kv_u64(&mut o, "threshold_ns", t.threshold_ns);
        o.push(',');
        push_kv_u64(&mut o, "cohort", t.cohort.count as u64);
        o.push(',');
        push_kv_f64(&mut o, "mean_total_ns", t.cohort.mean_total_ns);
        for (i, c) in Comp::ALL.iter().enumerate().take(COMP_COUNT) {
            o.push(',');
            push_kv_f64(&mut o, c.label(), t.cohort.mean_comp_ns[i]);
        }
        o.push('}');
    }
    o.push_str("]}");
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::shard_rows;
    use crate::{merge_samplers, Sampler};
    use trace::EventKind;

    fn balanced(s: &str) -> bool {
        let (mut b, mut c) = (0i32, 0i32);
        let mut in_str = false;
        let mut esc = false;
        for ch in s.chars() {
            if esc {
                esc = false;
                continue;
            }
            match ch {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' if !in_str => b += 1,
                '}' if !in_str => b -= 1,
                '[' if !in_str => c += 1,
                ']' if !in_str => c -= 1,
                _ => {}
            }
        }
        !in_str && b == 0 && c == 0
    }

    #[test]
    fn exports_are_well_formed_and_versioned() {
        let s = Sampler::new(100, 16);
        let mut r = s.ring();
        r.ingest(10, EventKind::TxCommit, 2, 0);
        r.ingest(40, EventKind::Sfence, 25, 0);
        s.submit(0, r);
        let rows = shard_rows(&merge_samplers(&[&s]));
        assert_eq!(rows.len(), 1);
        let line = series_row_json(&rows[0]);
        assert!(balanced(&line), "unbalanced: {line}");
        assert!(line.starts_with("{\"schema_version\":2,"));
        assert!(line.contains("\"fence_wait_ns\":25"));
        let header_cols = series_csv_header().split(',').count();
        let row_cols = series_row_csv(&rows[0]).split(',').count();
        assert_eq!(header_cols, row_cols);
        let d = crate::spans::decompose(&[], 0, &[99.0]);
        let dj = decomposition_json("adr \"q\"", &d);
        assert!(balanced(&dj), "unbalanced: {dj}");
        assert!(dj.contains("\"schema_version\":2"));
    }
}
