//! # obs — continuous virtual-time telemetry
//!
//! The counters (`ptm::PtmStats`, `pmem_sim::MemStats`) answer "how much,
//! in total"; the flight recorder (`crates/trace`) answers "what happened,
//! event by event". This crate fills the gap in between: *how do the
//! engine's gauges evolve over a run*, and *what exactly is a tail latency
//! made of*.
//!
//! Three layers:
//!
//! * a **time-series sampler** ([`Sampler`] / [`SampleRing`]): every event
//!   that reaches `MemSession::trace_event` is also folded into a
//!   [`GaugeSet`] accumulator; when virtual time crosses a sampling-period
//!   boundary the accumulator is flushed as one [`Sample`] into a
//!   fixed-capacity per-thread ring. Sampling adds **zero virtual time**
//!   (the ingest path never touches the clock) and is deterministic:
//!   sample contents depend only on each thread's deterministic virtual
//!   execution, and merged series are ordered by `(ts, tid, seq)` —
//!   independent of OS scheduling or submission order (see
//!   [`merge_samplers`]);
//! * **critical-path span reconstruction** ([`spans`]): rebuild
//!   per-transaction span trees from trace events and decompose exact
//!   p50/p95/p99 latencies into queue wait, execution, commit protocol,
//!   log flush, fence wait, WPQ stall, backoff and rollback;
//! * a **trend guard** ([`trend`]): diff archived `results/BENCH_*.json`
//!   files across PRs and flag metric regressions beyond a tolerance.
//!
//! The sampler arms exactly like the tracer: `Machine::attach_sampler`
//! stores an `Arc<Sampler>`; each session created while armed carries a
//! private [`SampleRing`] and submits it back on drop. One relaxed
//! atomic load when disarmed — the disabled path is bit-identical to a
//! build without telemetry.

pub mod export;
pub mod series;
pub mod spans;
pub mod trend;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use trace::{AbortCause, EventKind, HtmAbortCause};

/// Default sampling period: 10 µs of simulated time.
pub const DEFAULT_PERIOD_NS: u64 = 10_000;

/// Default per-thread sample-ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 12;

/// One sampling window's worth of gauge deltas and high-waters.
///
/// Counters are deltas *within the window*; `*_hw_ns` fields are
/// high-water gauges (maxima observed within the window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeSet {
    /// Committed transactions (software + hardware paths).
    pub commits: u64,
    /// Hardware-path commits (plain HTM or `HtmLogged`).
    pub htm_commits: u64,
    /// Commits issued through the cross-shard handle (`TxCommit` with
    /// `b == 3`), 2PC and single-shard-fast-path alike.
    pub twopc_commits: u64,
    /// Software aborts by [`AbortCause`] code.
    pub aborts: [u64; AbortCause::COUNT],
    /// Hardware aborts by [`HtmAbortCause`] code (PR 8 cause split).
    pub htm_aborts: [u64; HtmAbortCause::COUNT],
    /// Hardware retry budgets exhausted (software fallbacks).
    pub htm_fallbacks: u64,
    /// Transactional reads + writes (load proxy).
    pub reads: u64,
    pub writes: u64,
    /// Redo/undo/shadow log entries persisted by commits
    /// (`TxCommit.a`), and HTM back-end ring-log entries retired
    /// (`HtmRetire.b` — the `HtmLogged` ring-log occupancy proxy).
    pub log_entries: u64,
    pub htm_log_entries: u64,
    /// Own `sfence`s executed and virtual ns waited in them.
    pub sfences: u64,
    pub fence_wait_ns: u64,
    /// Group-commit window joins (fences elided) and ns waited for the
    /// covering fence.
    pub fence_joins: u64,
    pub join_wait_ns: u64,
    /// Cache-line write-backs issued and batched drains started.
    pub clwbs: u64,
    pub clwb_batches: u64,
    /// Flushes accepted by the WPQ, and the highest accepting-bank
    /// backlog (virtual ns) seen at acceptance — the WPQ occupancy
    /// gauge.
    pub wpq_accepts: u64,
    pub wpq_backlog_hw_ns: u64,
    /// Synchronous WPQ stalls and total stall ns.
    pub wpq_stalls: u64,
    pub wpq_stall_ns: u64,
    /// Contention backoffs: total ns slept and the single longest
    /// backoff in the window (high-water).
    pub backoffs: u64,
    pub backoff_ns: u64,
    pub backoff_hw_ns: u64,
    /// Open-loop front-end queue waits observed at dequeue.
    pub queue_waits: u64,
    pub queue_wait_ns: u64,
}

impl GaugeSet {
    /// True when no event touched the window.
    pub fn is_empty(&self) -> bool {
        *self == GaugeSet::default()
    }

    /// Fold one trace event into the window.
    pub fn apply(&mut self, kind: EventKind, a: u64, b: u64) {
        match kind {
            EventKind::TxCommit => {
                self.commits += 1;
                self.log_entries += a;
                if b == 1 || b == 2 {
                    self.htm_commits += 1;
                }
                if b == 3 {
                    self.twopc_commits += 1;
                }
            }
            EventKind::TxAbort => {
                let c = AbortCause::from_code(a).map_or(AbortCause::User as usize, |c| c as usize);
                self.aborts[c] += 1;
            }
            EventKind::HtmAbort => {
                let c = HtmAbortCause::from_code(a)
                    .map_or(HtmAbortCause::Explicit as usize, |c| c as usize);
                self.htm_aborts[c] += 1;
            }
            EventKind::HtmFallback => self.htm_fallbacks += 1,
            EventKind::HtmRetire => self.htm_log_entries += b,
            EventKind::TxRead => self.reads += 1,
            EventKind::TxWrite => self.writes += 1,
            EventKind::Sfence => {
                self.sfences += 1;
                self.fence_wait_ns += a;
            }
            EventKind::FenceJoin => {
                self.fence_joins += 1;
                self.join_wait_ns += a;
            }
            EventKind::Clwb => self.clwbs += 1,
            EventKind::ClwbBatch => self.clwb_batches += 1,
            EventKind::WpqAccept => {
                self.wpq_accepts += 1;
                self.wpq_backlog_hw_ns = self.wpq_backlog_hw_ns.max(a);
            }
            EventKind::WpqStall => {
                self.wpq_stalls += 1;
                self.wpq_stall_ns += a;
            }
            EventKind::Backoff => {
                self.backoffs += 1;
                self.backoff_ns += a;
                self.backoff_hw_ns = self.backoff_hw_ns.max(a);
            }
            EventKind::QueueWait => {
                self.queue_waits += 1;
                self.queue_wait_ns += a;
            }
            // Begin/acquire/validate and recovery events carry no gauge.
            _ => {}
        }
    }

    /// Accumulate another window into this one (counter deltas add,
    /// high-waters take the max).
    pub fn merge(&mut self, o: &GaugeSet) {
        self.commits += o.commits;
        self.htm_commits += o.htm_commits;
        self.twopc_commits += o.twopc_commits;
        for (d, s) in self.aborts.iter_mut().zip(o.aborts.iter()) {
            *d += s;
        }
        for (d, s) in self.htm_aborts.iter_mut().zip(o.htm_aborts.iter()) {
            *d += s;
        }
        self.htm_fallbacks += o.htm_fallbacks;
        self.reads += o.reads;
        self.writes += o.writes;
        self.log_entries += o.log_entries;
        self.htm_log_entries += o.htm_log_entries;
        self.sfences += o.sfences;
        self.fence_wait_ns += o.fence_wait_ns;
        self.fence_joins += o.fence_joins;
        self.join_wait_ns += o.join_wait_ns;
        self.clwbs += o.clwbs;
        self.clwb_batches += o.clwb_batches;
        self.wpq_accepts += o.wpq_accepts;
        self.wpq_backlog_hw_ns = self.wpq_backlog_hw_ns.max(o.wpq_backlog_hw_ns);
        self.wpq_stalls += o.wpq_stalls;
        self.wpq_stall_ns += o.wpq_stall_ns;
        self.backoffs += o.backoffs;
        self.backoff_ns += o.backoff_ns;
        self.backoff_hw_ns = self.backoff_hw_ns.max(o.backoff_hw_ns);
        self.queue_waits += o.queue_waits;
        self.queue_wait_ns += o.queue_wait_ns;
    }

    /// Total aborts across causes.
    pub fn aborts_total(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Total hardware aborts across causes.
    pub fn htm_aborts_total(&self) -> u64 {
        self.htm_aborts.iter().sum()
    }
}

/// One flushed sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Window start (a multiple of the sampling period).
    pub ts: u64,
    /// Flush order within the producing thread (dense, from 0).
    pub seq: u32,
    /// The window's gauges.
    pub g: GaugeSet,
}

/// Single-owner per-thread sample ring. Events are bucketed into
/// period-aligned windows; a window is flushed when virtual time first
/// crosses its end. Empty windows are skipped (idle time produces no
/// samples), and when the ring is full the *oldest* sample is dropped —
/// the tail of a run is always retained, and the loss is exact in
/// [`SampleRing::dropped`].
#[derive(Debug)]
pub struct SampleRing {
    period_ns: u64,
    capacity: usize,
    /// Window currently accumulating (index = ts / period).
    window: Option<u64>,
    acc: GaugeSet,
    seq: u32,
    samples: std::collections::VecDeque<Sample>,
    dropped: u64,
}

impl SampleRing {
    pub fn new(period_ns: u64, capacity: usize) -> SampleRing {
        SampleRing {
            period_ns: period_ns.max(1),
            capacity: capacity.max(1),
            window: None,
            acc: GaugeSet::default(),
            seq: 0,
            samples: std::collections::VecDeque::new(),
            dropped: 0,
        }
    }

    /// Fold one event into the ring, flushing completed windows first.
    pub fn ingest(&mut self, ts: u64, kind: EventKind, a: u64, b: u64) {
        let w = ts / self.period_ns;
        match self.window {
            Some(cur) if cur == w => {}
            Some(_) => self.flush(),
            None => {}
        }
        self.window = Some(w);
        self.acc.apply(kind, a, b);
    }

    fn flush(&mut self) {
        if let Some(w) = self.window.take() {
            if !self.acc.is_empty() {
                if self.samples.len() == self.capacity {
                    self.samples.pop_front();
                    self.dropped += 1;
                }
                self.samples.push_back(Sample {
                    ts: w * self.period_ns,
                    seq: self.seq,
                    g: self.acc,
                });
                self.seq += 1;
            }
            self.acc = GaugeSet::default();
        }
    }

    /// Windows flushed out of the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Samples currently held (final partial window included only after
    /// [`SampleRing::finish`]).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Flush the trailing partial window and drain the ring.
    pub fn finish(mut self) -> (Vec<Sample>, u64) {
        self.flush();
        (self.samples.into_iter().collect(), self.dropped)
    }
}

/// One thread's submitted series.
#[derive(Debug, Clone)]
pub struct ThreadSeries {
    /// Virtual thread id, shard-tagged like [`trace::TraceSink`] tids.
    pub tid: u32,
    pub samples: Vec<Sample>,
    pub dropped: u64,
}

/// A restart-GC phase observation (untimed: recovery runs outside
/// virtual time, so the wall-clock duration rides along instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcNote {
    /// Phase code: 0 = scan, 1 = mark, 2 = sweep.
    pub phase: u64,
    pub wall_ns: u64,
    /// The shard that restarted (from the sampler's shard tag).
    pub shard: u32,
}

/// Shared collector for sampled series, armed on a
/// `pmem_sim::Machine` exactly like `trace::TraceSink`.
///
/// In sharded engines, create one sampler per shard with
/// [`Sampler::new_for_shard`]; submitted thread ids are tagged with the
/// shard (see [`trace::shard_of_tid`]) so merged series stay
/// attributable.
#[derive(Debug)]
pub struct Sampler {
    period_ns: u64,
    capacity: usize,
    shard_tag: u32,
    threads: Mutex<Vec<ThreadSeries>>,
    gc: Mutex<Vec<GcNote>>,
    dropped_total: AtomicU64,
}

impl Sampler {
    pub fn new(period_ns: u64, capacity: usize) -> Sampler {
        Sampler {
            period_ns: period_ns.max(1),
            capacity: capacity.max(1),
            shard_tag: 0,
            threads: Mutex::new(Vec::new()),
            gc: Mutex::new(Vec::new()),
            dropped_total: AtomicU64::new(0),
        }
    }

    /// A sampler whose submitted tids are tagged as belonging to
    /// `shard` (mirrors `TraceSink::new_for_shard`).
    pub fn new_for_shard(period_ns: u64, capacity: usize, shard: usize) -> Sampler {
        let mut s = Sampler::new(period_ns, capacity);
        s.shard_tag = (shard as u32) << trace::SHARD_SHIFT;
        s
    }

    /// Sampler with the default period and ring capacity.
    pub fn with_defaults() -> Sampler {
        Sampler::new(DEFAULT_PERIOD_NS, DEFAULT_RING_CAPACITY)
    }

    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// The shard this sampler tags submissions with.
    pub fn shard(&self) -> u32 {
        self.shard_tag >> trace::SHARD_SHIFT
    }

    /// A fresh ring for one session to own.
    pub fn ring(&self) -> SampleRing {
        SampleRing::new(self.period_ns, self.capacity)
    }

    /// Accept a finished ring. Recovery-band tids keep their reserved
    /// ids; everything else is shard-tagged.
    pub fn submit(&self, tid: u32, ring: SampleRing) {
        let (samples, dropped) = ring.finish();
        if samples.is_empty() && dropped == 0 {
            return;
        }
        let tagged = if trace::is_recovery_tid(tid) {
            tid
        } else {
            self.shard_tag | tid
        };
        self.dropped_total.fetch_add(dropped, Ordering::Relaxed);
        let mut threads = self.threads.lock().unwrap();
        threads.push(ThreadSeries {
            tid: tagged,
            samples,
            dropped,
        });
        threads.sort_by_key(|t| t.tid);
    }

    /// Record a restart-GC phase completion (no virtual timestamp).
    pub fn note_gc_phase(&self, phase: u64, wall_ns: u64) {
        self.gc.lock().unwrap().push(GcNote {
            phase,
            wall_ns,
            shard: self.shard(),
        });
    }

    /// Submitted per-thread series, sorted by tid.
    pub fn threads(&self) -> Vec<ThreadSeries> {
        self.threads.lock().unwrap().clone()
    }

    /// GC phase observations in submission order.
    pub fn gc_notes(&self) -> Vec<GcNote> {
        self.gc.lock().unwrap().clone()
    }

    /// Total samples dropped across all submitted rings.
    pub fn dropped_samples(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }

    /// Drop all submitted series (between setup and measured phases).
    pub fn clear(&self) {
        self.threads.lock().unwrap().clear();
        self.gc.lock().unwrap().clear();
        self.dropped_total.store(0, Ordering::Relaxed);
    }
}

/// One sample in a merged, deterministic multi-thread timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedSample {
    pub ts: u64,
    pub tid: u32,
    pub seq: u32,
    pub g: GaugeSet,
}

/// Merge any number of samplers' series into one timeline ordered by
/// `(ts, tid, seq)`. The order — and every sample's content — is a pure
/// function of each thread's deterministic virtual execution, so the
/// merged series is identical regardless of shard/thread retirement
/// order or submission interleaving.
pub fn merge_samplers(samplers: &[&Sampler]) -> Vec<MergedSample> {
    let mut out = Vec::new();
    for s in samplers {
        for t in s.threads() {
            out.extend(t.samples.iter().map(|s| MergedSample {
                ts: s.ts,
                tid: t.tid,
                seq: s.seq,
                g: s.g,
            }));
        }
    }
    out.sort_by_key(|s| (s.ts, s.tid, s.seq));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_windows_flush_on_crossing() {
        let mut r = SampleRing::new(100, 8);
        r.ingest(10, EventKind::TxCommit, 3, 0);
        r.ingest(90, EventKind::Sfence, 40, 0);
        assert_eq!(r.len(), 0, "window still open");
        r.ingest(150, EventKind::TxCommit, 2, 0);
        assert_eq!(r.len(), 1);
        let (samples, dropped) = r.finish();
        assert_eq!(dropped, 0);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].ts, 0);
        assert_eq!(samples[0].g.commits, 1);
        assert_eq!(samples[0].g.log_entries, 3);
        assert_eq!(samples[0].g.sfences, 1);
        assert_eq!(samples[0].g.fence_wait_ns, 40);
        assert_eq!(samples[1].ts, 100);
        assert_eq!(samples[1].g.commits, 1);
    }

    #[test]
    fn ring_skips_empty_windows_and_drops_oldest() {
        let mut r = SampleRing::new(10, 2);
        for w in [0u64, 5, 9] {
            // Windows 0, 5 and 9 get events; 1-4 and 6-8 stay empty.
            r.ingest(w * 10 + 1, EventKind::Clwb, w, 1);
        }
        let (samples, dropped) = r.finish();
        assert_eq!(dropped, 1, "capacity 2, three non-empty windows");
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].ts, 50);
        assert_eq!(samples[1].ts, 90);
        assert_eq!(samples[1].seq, 2, "seq counts all flushes, kept or not");
    }

    #[test]
    fn gauge_apply_covers_cause_splits() {
        let mut g = GaugeSet::default();
        g.apply(EventKind::TxAbort, AbortCause::Validation as u64, 7);
        g.apply(EventKind::HtmAbort, HtmAbortCause::Capacity as u64, 0);
        g.apply(EventKind::WpqAccept, 500, 10);
        g.apply(EventKind::WpqAccept, 200, 11);
        g.apply(EventKind::Backoff, 64, 1);
        g.apply(EventKind::Backoff, 640, 2);
        g.apply(EventKind::QueueWait, 30, 12);
        assert_eq!(g.aborts[AbortCause::Validation as usize], 1);
        assert_eq!(g.htm_aborts[HtmAbortCause::Capacity as usize], 1);
        assert_eq!(g.wpq_backlog_hw_ns, 500);
        assert_eq!(g.backoff_ns, 704);
        assert_eq!(g.backoff_hw_ns, 640);
        assert_eq!(g.queue_wait_ns, 30);
        let mut sum = GaugeSet::default();
        sum.merge(&g);
        sum.merge(&g);
        assert_eq!(sum.aborts_total(), 2);
        assert_eq!(sum.wpq_backlog_hw_ns, 500, "high-water takes max");
    }

    #[test]
    fn sampler_tags_shards_and_merges_deterministically() {
        let a = Sampler::new_for_shard(100, 16, 2);
        let b = Sampler::new_for_shard(100, 16, 0);
        let mut r0 = a.ring();
        r0.ingest(10, EventKind::TxCommit, 1, 0);
        let mut r1 = b.ring();
        r1.ingest(5, EventKind::TxCommit, 1, 0);
        a.submit(1, r0);
        b.submit(1, r1);
        let merged = merge_samplers(&[&a, &b]);
        assert_eq!(merged.len(), 2);
        assert_eq!(trace::shard_of_tid(merged[0].tid), 0);
        assert_eq!(trace::shard_of_tid(merged[1].tid), 2);
        assert_eq!(trace::local_tid(merged[1].tid), 1);
        // Submission order must not matter: rebuild reversed.
        let a2 = Sampler::new_for_shard(100, 16, 2);
        let b2 = Sampler::new_for_shard(100, 16, 0);
        let mut r0 = a2.ring();
        r0.ingest(10, EventKind::TxCommit, 1, 0);
        let mut r1 = b2.ring();
        r1.ingest(5, EventKind::TxCommit, 1, 0);
        b2.submit(1, r1);
        a2.submit(1, r0);
        let merged2 = merge_samplers(&[&a2, &b2]);
        assert_eq!(merged, merged2);
    }
}
