//! Per-shard time-series aggregation and run summaries.
//!
//! The raw merged timeline ([`crate::merge_samplers`]) has one sample
//! per (thread, window). Dashboards and the eADR sanity checks want the
//! per-shard view: all threads of a shard folded into one [`GaugeSet`]
//! per window, rows ordered by `(ts, shard)` — still fully
//! deterministic.

use crate::{merge_samplers, GaugeSet, MergedSample, Sampler};
use trace::shard_of_tid;

/// One (window, shard) row of the aggregated series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRow {
    /// Window start timestamp (multiple of the sampling period).
    pub ts: u64,
    pub shard: u32,
    /// Threads of this shard that contributed to the window.
    pub threads: u32,
    pub g: GaugeSet,
}

/// Fold a merged timeline into per-(window, shard) rows.
pub fn shard_rows(merged: &[MergedSample]) -> Vec<ShardRow> {
    let mut rows: Vec<ShardRow> = Vec::new();
    for s in merged {
        let shard = shard_of_tid(s.tid);
        match rows.last_mut() {
            Some(r) if r.ts == s.ts && r.shard == shard => {
                r.g.merge(&s.g);
                r.threads += 1;
            }
            _ => {
                // Merged order is (ts, tid, seq) and tids are
                // shard-tagged in the high bits, so equal (ts, shard)
                // runs are contiguous only per shard prefix; fall back
                // to a search for interleaved shards.
                if let Some(r) = rows.iter_mut().find(|r| r.ts == s.ts && r.shard == shard) {
                    r.g.merge(&s.g);
                    r.threads += 1;
                } else {
                    rows.push(ShardRow {
                        ts: s.ts,
                        shard,
                        threads: 1,
                        g: s.g,
                    });
                }
            }
        }
    }
    rows.sort_by_key(|r| (r.ts, r.shard));
    rows
}

/// Convenience: merge samplers and aggregate per shard in one step.
pub fn aggregate(samplers: &[&Sampler]) -> Vec<ShardRow> {
    shard_rows(&merge_samplers(samplers))
}

/// Whole-run rollup of a series, for report headers and CI sanity
/// checks (eADR runs must show zero fence-wait / WPQ samples).
#[derive(Debug, Clone, Default)]
pub struct SeriesSummary {
    /// Distinct (window, shard) rows.
    pub rows: usize,
    /// Distinct window timestamps.
    pub windows: usize,
    /// Shards observed.
    pub shards: usize,
    /// First and last window start.
    pub first_ts: u64,
    pub last_ts: u64,
    /// Sum of every row (high-waters are run maxima).
    pub totals: GaugeSet,
    /// Rows in which any fence or WPQ activity appeared
    /// (`sfences`, `fence_wait_ns`, `wpq_accepts`, `wpq_stalls`).
    pub fence_rows: usize,
    pub wpq_rows: usize,
    /// Peak per-window committed ops across shards (burst gauge).
    pub peak_window_commits: u64,
}

impl SeriesSummary {
    pub fn from_rows(rows: &[ShardRow]) -> SeriesSummary {
        let mut s = SeriesSummary {
            rows: rows.len(),
            first_ts: rows.first().map_or(0, |r| r.ts),
            last_ts: rows.last().map_or(0, |r| r.ts),
            ..SeriesSummary::default()
        };
        let mut shards: Vec<u32> = Vec::new();
        let mut windows: Vec<u64> = Vec::new();
        for r in rows {
            s.totals.merge(&r.g);
            if !shards.contains(&r.shard) {
                shards.push(r.shard);
            }
            if windows.last() != Some(&r.ts) {
                windows.push(r.ts);
            }
            if r.g.sfences > 0 || r.g.fence_wait_ns > 0 || r.g.fence_joins > 0 {
                s.fence_rows += 1;
            }
            if r.g.wpq_accepts > 0 || r.g.wpq_stalls > 0 {
                s.wpq_rows += 1;
            }
            s.peak_window_commits = s.peak_window_commits.max(r.g.commits);
        }
        s.shards = shards.len();
        s.windows = windows.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::EventKind;

    fn sampled(shard: usize, tid: u32, events: &[(u64, EventKind, u64, u64)]) -> Sampler {
        let s = Sampler::new_for_shard(100, 64, shard);
        let mut r = s.ring();
        for &(ts, k, a, b) in events {
            r.ingest(ts, k, a, b);
        }
        s.submit(tid, r);
        s
    }

    #[test]
    fn rows_fold_threads_of_a_shard_per_window() {
        let s0 = sampled(0, 0, &[(10, EventKind::TxCommit, 1, 0)]);
        let mut r = s0.ring();
        r.ingest(20, EventKind::TxCommit, 2, 0);
        r.ingest(120, EventKind::Sfence, 5, 0);
        s0.submit(1, r);
        let s1 = sampled(3, 0, &[(15, EventKind::WpqAccept, 700, 15)]);
        let rows = aggregate(&[&s0, &s1]);
        assert_eq!(rows.len(), 3);
        // (ts 0, shard 0): two threads' commits folded.
        assert_eq!((rows[0].ts, rows[0].shard, rows[0].threads), (0, 0, 2));
        assert_eq!(rows[0].g.commits, 2);
        assert_eq!(rows[0].g.log_entries, 3);
        // (ts 0, shard 3).
        assert_eq!((rows[1].ts, rows[1].shard), (0, 3));
        assert_eq!(rows[1].g.wpq_backlog_hw_ns, 700);
        // (ts 100, shard 0).
        assert_eq!((rows[2].ts, rows[2].shard), (100, 0));
        let sum = SeriesSummary::from_rows(&rows);
        assert_eq!(sum.rows, 3);
        assert_eq!(sum.windows, 2);
        assert_eq!(sum.shards, 2);
        assert_eq!(sum.totals.commits, 2);
        assert_eq!(sum.fence_rows, 1);
        assert_eq!(sum.wpq_rows, 1);
        assert_eq!(sum.peak_window_commits, 2);
    }
}
